//! Per-kernel runtime models, fitted from measured offloads.
//!
//! The admission controller and the model-guided policy both need
//! `t̂(M, N)` per kernel (the paper's Eq. 1 generalized across the
//! kernel zoo) plus a host-execution cost line. [`calibrate`] measures a
//! small `(M, N)` grid per kernel on the actual simulated SoC and fits
//! both; [`ModelTable::paper_defaults`] provides the paper's published
//! DAXPY coefficients for every kernel when no machine is available
//! (tests, quick estimates).

use mpsoc_offload::decision::HostModel;
use mpsoc_offload::{OffloadStrategy, Offloader, RuntimeModel, Sample};
use mpsoc_sim::rng::SplitMix64;
use serde::{Deserialize, Serialize};

use crate::error::SchedError;
use crate::job::KernelId;

/// Fitted cost models for one kernel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KernelModel {
    /// Which kernel.
    pub kernel: KernelId,
    /// Offload runtime model `t̂(M, N)` (Eq. 1).
    pub accel: RuntimeModel,
    /// Host-execution cost line `t_host(N)`.
    pub host: HostModel,
    /// Goodness of fit of the offload model over the calibration grid.
    pub r_squared: f64,
}

/// Per-kernel models for every schedulable kernel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelTable {
    entries: Vec<KernelModel>,
}

impl ModelTable {
    /// A table from explicit entries; must cover every [`KernelId`].
    pub fn new(entries: Vec<KernelModel>) -> Self {
        for id in KernelId::ALL {
            assert!(
                entries.iter().any(|e| e.kernel == id),
                "model table is missing {id}"
            );
        }
        ModelTable { entries }
    }

    /// The paper's published DAXPY coefficients (Eq. 1) and the CVA6
    /// host line, applied to every kernel. Coarse — calibration against
    /// the simulator is strictly better — but self-contained.
    pub fn paper_defaults() -> Self {
        ModelTable {
            entries: KernelId::ALL
                .iter()
                .map(|&kernel| KernelModel {
                    kernel,
                    accel: RuntimeModel::paper(),
                    host: HostModel::cva6_daxpy(),
                    r_squared: f64::NAN,
                })
                .collect(),
        }
    }

    /// The model for one kernel.
    ///
    /// # Panics
    ///
    /// Panics if the table does not cover `kernel` (construction
    /// enforces full coverage, so only a hand-built table can).
    pub fn get(&self, kernel: KernelId) -> &KernelModel {
        self.entries
            .iter()
            .find(|e| e.kernel == kernel)
            .unwrap_or_else(|| panic!("model table is missing {kernel}"))
    }

    /// All entries, in construction order.
    pub fn entries(&self) -> &[KernelModel] {
        &self.entries
    }
}

/// The `(M, N)` measurement grid calibration sweeps per kernel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CalibrationGrid {
    /// Cluster counts to measure (clamped to the machine size).
    pub m: Vec<u64>,
    /// Problem sizes to measure.
    pub n: Vec<u64>,
    /// The two problem sizes anchoring the host cost line.
    pub host_n: (u64, u64),
}

impl Default for CalibrationGrid {
    fn default() -> Self {
        CalibrationGrid {
            m: vec![1, 2, 4, 8],
            n: vec![256, 768, 2048],
            host_n: (256, 2048),
        }
    }
}

/// Measures the calibration grid for every kernel on `offloader`'s SoC
/// (extended-runtime strategy, the configuration the scheduler targets)
/// and fits per-kernel models. Deterministic in (`grid`, `seed`,
/// machine configuration).
///
/// # Errors
///
/// Offload failures (grid exceeding TCDM capacity, etc.) and singular
/// fits.
pub fn calibrate(
    offloader: &mut Offloader,
    grid: &CalibrationGrid,
    seed: u64,
) -> Result<ModelTable, SchedError> {
    let clusters = offloader.config().clusters as u64;
    let ms: Vec<u64> = grid.m.iter().copied().filter(|&m| m <= clusters).collect();
    assert!(
        ms.len() >= 3,
        "calibration needs at least three cluster counts within the machine"
    );
    let mut entries = Vec::with_capacity(KernelId::ALL.len());
    for id in KernelId::ALL {
        let kernel = id.instantiate();
        let mut samples = Vec::with_capacity(ms.len() * grid.n.len());
        for &m in &ms {
            for &n in &grid.n {
                let (x, y) = operands(n, seed ^ n);
                let run = offloader.offload(
                    kernel.as_ref(),
                    &x,
                    &y,
                    m as usize,
                    OffloadStrategy::extended(),
                )?;
                samples.push(Sample {
                    m,
                    n,
                    cycles: run.cycles() as f64,
                });
            }
        }
        let fit = RuntimeModel::fit(&samples)?;

        let host = {
            let (n1, n2) = grid.host_n;
            assert!(n1 < n2, "host anchors must be distinct and increasing");
            let t1 = host_cycles(offloader, kernel.as_ref(), n1, seed)?;
            let t2 = host_cycles(offloader, kernel.as_ref(), n2, seed)?;
            let c_elem = (t2 - t1) / (n2 - n1) as f64;
            HostModel {
                c0: t1 - c_elem * n1 as f64,
                c_elem,
            }
        };

        entries.push(KernelModel {
            kernel: id,
            accel: fit.model,
            host,
            r_squared: fit.r_squared,
        });
    }
    Ok(ModelTable::new(entries))
}

fn host_cycles(
    offloader: &mut Offloader,
    kernel: &dyn mpsoc_kernels::Kernel,
    n: u64,
    seed: u64,
) -> Result<f64, SchedError> {
    let (x, y) = operands(n, seed ^ n);
    let (cycles, _) = offloader.run_on_host(kernel, &x, &y)?;
    Ok(cycles as f64)
}

/// Deterministic operand vectors, seeded per problem size (matching the
/// experiment harness convention).
pub(crate) fn operands(n: u64, seed: u64) -> (Vec<f64>, Vec<f64>) {
    let mut rng = SplitMix64::new(seed);
    let mut x = vec![0.0; n as usize];
    let mut y = vec![0.0; n as usize];
    rng.fill_f64(&mut x, -4.0, 4.0);
    rng.fill_f64(&mut y, -4.0, 4.0);
    (x, y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpsoc_soc::SocConfig;

    #[test]
    fn paper_defaults_cover_every_kernel() {
        let table = ModelTable::paper_defaults();
        for id in KernelId::ALL {
            assert_eq!(table.get(id).kernel, id);
        }
        assert_eq!(table.entries().len(), KernelId::ALL.len());
    }

    #[test]
    fn calibration_fits_well_on_a_small_machine() {
        let mut offloader = Offloader::new(SocConfig::with_clusters(8)).expect("soc");
        let grid = CalibrationGrid {
            m: vec![1, 2, 4, 8],
            n: vec![256, 512, 1024],
            host_n: (256, 1024),
        };
        let table = calibrate(&mut offloader, &grid, 0xCA1).expect("calibrate");
        for entry in table.entries() {
            // Map kernels track Eq. 1 almost exactly; reductions carry
            // a combine step the 3-term model only approximates, so the
            // bar is slightly lower.
            assert!(
                entry.r_squared > 0.95,
                "{}: r² = {}",
                entry.kernel,
                entry.r_squared
            );
            assert!(entry.accel.c0 > 0.0, "{}", entry.kernel);
            assert!(entry.host.c_elem > 0.0, "{}", entry.kernel);
            // The accelerator must out-scale the host per element at
            // full parallelism, or offloading would never pay off.
            assert!(
                entry.accel.c_mem + entry.accel.c_comp / 8.0 < entry.host.c_elem,
                "{}",
                entry.kernel
            );
        }
    }

    #[test]
    fn calibration_is_deterministic() {
        let grid = CalibrationGrid {
            m: vec![1, 2, 4],
            n: vec![256, 512, 1024],
            host_n: (256, 1024),
        };
        let run = || {
            let mut offloader = Offloader::new(SocConfig::with_clusters(4)).expect("soc");
            calibrate(&mut offloader, &grid, 7).expect("calibrate")
        };
        assert_eq!(run(), run());
    }
}
