//! Service-time backends: how long a scheduled job actually takes.
//!
//! The engine separates *predicting* runtimes (always the fitted models
//! — that is the paper's premise) from *charging* them:
//!
//! - [`ServiceBackend::Measured`] runs each `(kernel, N, M)` combination
//!   once on the real simulated SoC **solo** and replays the cached
//!   cycle count thereafter, so the virtual-time simulation advances by
//!   *measured* runtimes and model error shows up as deadline misses,
//!   exactly as it would on hardware. The cache key deliberately drops
//!   the mask: clusters are symmetric (identical cores, TCDM and a
//!   uniform-latency switch tree to HBM), so on an otherwise-idle SoC
//!   the partition's *count* `M` — not which clusters it contains —
//!   determines the runtime. What the key therefore also bakes in is
//!   the solo-run assumption itself: a measured service time can never
//!   reflect cross-tenant contention, because co-residents would make
//!   the runtime depend on what else is in flight, not on `(kernel, N,
//!   M)` alone.
//! - [`ServiceBackend::Analytic`] charges the model prediction itself —
//!   no SoC in the loop, arbitrarily fast, useful for large sweeps and
//!   for isolating queueing effects from model error.
//! - [`ServiceBackend::CoSimulated`] drops the solo-run assumption: the
//!   engine drives one *shared* SoC session in virtual time, tenants on
//!   disjoint partitions overlap on the real NoC/HBM/host models, and
//!   each job's service time (and its attributed contention cycles)
//!   *emerges* from the co-simulation instead of being charged from a
//!   cache.

use std::collections::BTreeMap;

use mpsoc_noc::ClusterMask;
use mpsoc_offload::{OffloadStrategy, Offloader};

use crate::calibrate::{operands, ModelTable};
use crate::error::SchedError;
use crate::job::KernelId;

/// Where service times come from.
#[derive(Debug)]
pub enum ServiceBackend {
    /// Measured on a simulated SoC, memoized by `(kernel, N, M)`.
    Measured {
        /// The SoC to measure on.
        offloader: Box<Offloader>,
        /// Operand seed (measurements are deterministic in it).
        seed: u64,
        /// Dispatch strategy for measured offloads.
        strategy: OffloadStrategy,
        /// Memoized offload runtimes.
        offload_cache: BTreeMap<(KernelId, u64, usize), u64>,
        /// Memoized host runtimes.
        host_cache: BTreeMap<(KernelId, u64), u64>,
    },
    /// Model predictions, rounded up to whole cycles.
    Analytic {
        /// The per-kernel models to charge.
        table: ModelTable,
    },
    /// One shared SoC co-simulated in virtual time: concurrent tenants
    /// interfere on the real NoC/HBM/host models. Service times are not
    /// charged through [`ServiceBackend::offload_cycles`] — the engine
    /// submits jobs into the offloader's session and virtual time
    /// follows the SoC's event queue.
    CoSimulated {
        /// The shared SoC every tenant runs on.
        offloader: Box<Offloader>,
        /// Operand seed (runs are deterministic in it).
        seed: u64,
        /// Dispatch strategy for submitted offloads.
        strategy: OffloadStrategy,
        /// Memoized host runtimes (host fallback runs stay virtual: the
        /// scalar host pipeline is modeled as a serial server, exactly
        /// as under the measured backend).
        host_cache: BTreeMap<(KernelId, u64), u64>,
    },
}

impl ServiceBackend {
    /// A measured backend over `offloader`, using the extended runtime
    /// (the configuration the scheduler targets).
    pub fn measured(offloader: Offloader, seed: u64) -> Self {
        ServiceBackend::Measured {
            offloader: Box::new(offloader),
            seed,
            strategy: OffloadStrategy::extended(),
            offload_cache: BTreeMap::new(),
            host_cache: BTreeMap::new(),
        }
    }

    /// An analytic backend over fitted models.
    pub fn analytic(table: ModelTable) -> Self {
        ServiceBackend::Analytic { table }
    }

    /// A co-simulated backend over `offloader`: tenants share the SoC
    /// and contention emerges, using the extended runtime.
    pub fn co_simulated(offloader: Offloader, seed: u64) -> Self {
        ServiceBackend::CoSimulated {
            offloader: Box::new(offloader),
            seed,
            strategy: OffloadStrategy::extended(),
            host_cache: BTreeMap::new(),
        }
    }

    /// Drops memoized solo-run offload measurements.
    ///
    /// Called when the machine changes under the cache — above all on
    /// cluster quarantine: past measurements may have been taken on a
    /// partition containing the cluster now known to be faulty (a
    /// stalling DMA inflates the cached cycle count, a corrupting one
    /// invalidates the run entirely), so the `(kernel, N, M)` entries
    /// can no longer be trusted. Host runtimes never touch clusters and
    /// stay cached. Analytic and co-simulated backends hold no offload
    /// cache; the call is a no-op there.
    pub fn invalidate_measurements(&mut self) {
        if let ServiceBackend::Measured { offload_cache, .. } = self {
            offload_cache.clear();
        }
    }

    /// Cycles one offload of `kernel` over `n` elements takes on the
    /// partition `mask`.
    ///
    /// # Errors
    ///
    /// Offload failures from the measured backend (e.g. a partition too
    /// small for the job's TCDM footprint).
    pub fn offload_cycles(
        &mut self,
        kernel: KernelId,
        n: u64,
        mask: ClusterMask,
    ) -> Result<u64, SchedError> {
        let m = mask.count();
        match self {
            ServiceBackend::Measured {
                offloader,
                seed,
                strategy,
                offload_cache,
                ..
            } => {
                if let Some(&cycles) = offload_cache.get(&(kernel, n, m)) {
                    return Ok(cycles);
                }
                let (x, y) = operands(n, *seed ^ n);
                let run =
                    offloader.offload_to(kernel.instantiate().as_ref(), &x, &y, mask, *strategy)?;
                let cycles = run.cycles();
                offload_cache.insert((kernel, n, m), cycles);
                Ok(cycles)
            }
            ServiceBackend::Analytic { table } => {
                Ok(table.get(kernel).accel.predict(m as u64, n).ceil() as u64)
            }
            ServiceBackend::CoSimulated { .. } => unreachable!(
                "co-simulated service times emerge from the engine's shared session, \
                 not from per-job charges"
            ),
        }
    }

    /// Cycles one host execution of `kernel` over `n` elements takes.
    ///
    /// # Errors
    ///
    /// Host-run failures from the measured backend.
    pub fn host_cycles(&mut self, kernel: KernelId, n: u64) -> Result<u64, SchedError> {
        match self {
            ServiceBackend::Measured {
                offloader,
                seed,
                host_cache,
                ..
            }
            | ServiceBackend::CoSimulated {
                offloader,
                seed,
                host_cache,
                ..
            } => {
                if let Some(&cycles) = host_cache.get(&(kernel, n)) {
                    return Ok(cycles);
                }
                let (x, y) = operands(n, *seed ^ n);
                let (cycles, _) = offloader.run_on_host(kernel.instantiate().as_ref(), &x, &y)?;
                host_cache.insert((kernel, n), cycles);
                Ok(cycles)
            }
            ServiceBackend::Analytic { table } => {
                Ok(table.get(kernel).host.predict(n).ceil() as u64)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpsoc_soc::SocConfig;

    #[test]
    fn measured_backend_memoizes_by_count_not_mask() {
        let mut backend = ServiceBackend::measured(
            Offloader::new(SocConfig::with_clusters(8)).expect("soc"),
            0xBEEF,
        );
        let low = ClusterMask::first(2);
        let mut high = ClusterMask::EMPTY;
        high.insert(5);
        high.insert(7);
        let a = backend
            .offload_cycles(KernelId::Daxpy, 512, low)
            .expect("offload");
        let b = backend
            .offload_cycles(KernelId::Daxpy, 512, high)
            .expect("offload");
        assert_eq!(a, b);
        match &backend {
            ServiceBackend::Measured { offload_cache, .. } => {
                assert_eq!(offload_cache.len(), 1)
            }
            _ => unreachable!(),
        }
    }

    /// The mask-blind cache key is *sound*, not just convenient: two
    /// fresh backends (no memoization between them) measuring the same
    /// `(kernel, N, M)` on different equal-size partitions — the bottom
    /// of the machine vs a scattered high mask — report the identical
    /// cycle count, because clusters are symmetric and a solo run sees
    /// no cross-tenant traffic. (The previous version of this test
    /// compared two calls on *one* backend, which the cache made
    /// tautological.)
    #[test]
    fn placement_does_not_change_solo_measured_timing() {
        let measure = |mask: ClusterMask| {
            let mut backend = ServiceBackend::measured(
                Offloader::new(SocConfig::with_clusters(8)).expect("soc"),
                0xBEEF,
            );
            backend
                .offload_cycles(KernelId::Daxpy, 512, mask)
                .expect("offload")
        };
        let low = measure(ClusterMask::first(2));
        let scattered = measure([3, 6].into_iter().collect());
        let high = measure(ClusterMask::range(6, 2));
        assert_eq!(low, scattered);
        assert_eq!(low, high);
    }

    #[test]
    fn analytic_matches_model_predictions() {
        let table = ModelTable::paper_defaults();
        let expected = table.get(KernelId::Daxpy).accel.predict(4, 1024).ceil() as u64;
        let mut backend = ServiceBackend::analytic(table);
        let got = backend
            .offload_cycles(KernelId::Daxpy, 1024, ClusterMask::first(4))
            .expect("analytic");
        assert_eq!(got, expected);
        let host = backend.host_cycles(KernelId::Daxpy, 1024).expect("host");
        assert!(host > got, "host must be slower at this size");
    }
}
