//! Scheduling policies: which queued job starts next, and how many
//! clusters it gets.
//!
//! All policies see the same interface — the admitted-but-waiting queue
//! and a snapshot of machine state — and return one placement at a time;
//! the engine re-asks until the policy passes. This keeps policies pure
//! decision logic: carving masks, clocks and bookkeeping stay in the
//! engine.

use mpsoc_offload::decision::min_clusters;
use serde::{Deserialize, Serialize};

use crate::calibrate::ModelTable;
use crate::job::Job;

/// An admitted job waiting for clusters, with its admission-time
/// solution of Eq. 3 attached.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QueuedJob {
    /// The job.
    pub job: Job,
    /// `M_min` from admission: the smallest partition that met the
    /// deadline assuming an immediate start.
    pub m_min: u64,
    /// Predicted runtime at `m_min` (cycles).
    pub predicted: f64,
}

/// Machine-state snapshot a policy decides against.
#[derive(Debug, Clone, Copy)]
pub struct SchedContext<'a> {
    /// Current virtual time (cycles).
    pub now: u64,
    /// Clusters currently free.
    pub free_clusters: usize,
    /// Usable machine size: total clusters minus any quarantined ones —
    /// the largest partition the allocator could ever grant.
    pub total_clusters: usize,
    /// Per-kernel fitted models (for policies that re-predict).
    pub models: &'a ModelTable,
}

/// One placement: start the `queue_index`-th waiting job on `m`
/// clusters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    /// Index into the ready queue passed to [`SchedPolicy::pick`].
    pub queue_index: usize,
    /// Partition size to carve; must not exceed the free count.
    pub m: usize,
}

/// A scheduling discipline.
pub trait SchedPolicy {
    /// Stable identifier used in reports and tables.
    fn name(&self) -> &'static str;

    /// Picks the next placement, or `None` to leave the machine as-is
    /// until the next event. Called repeatedly after every arrival and
    /// completion; each returned placement removes that job from the
    /// queue before the next call.
    fn pick(&mut self, ready: &[QueuedJob], ctx: &SchedContext<'_>) -> Option<Placement>;
}

/// FIFO with head-of-line blocking: strictly serves the oldest admitted
/// job at its admission-time `M_min`; if that partition is not free,
/// everything waits. The classic baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct FifoFirstFit;

impl SchedPolicy for FifoFirstFit {
    fn name(&self) -> &'static str {
        "fifo"
    }

    fn pick(&mut self, ready: &[QueuedJob], ctx: &SchedContext<'_>) -> Option<Placement> {
        let head = ready.first()?;
        let m = head.m_min as usize;
        (m <= ctx.free_clusters).then_some(Placement { queue_index: 0, m })
    }
}

/// Serves the waiting job with the smallest `M_min` first (ties: oldest
/// first). Packs well — small jobs drain fast — but can starve wide
/// jobs under pressure and ignores deadlines entirely.
#[derive(Debug, Clone, Copy, Default)]
pub struct SmallestFirst;

impl SchedPolicy for SmallestFirst {
    fn name(&self) -> &'static str {
        "smallest_first"
    }

    fn pick(&mut self, ready: &[QueuedJob], ctx: &SchedContext<'_>) -> Option<Placement> {
        let (queue_index, job) = ready
            .iter()
            .enumerate()
            .min_by_key(|(i, q)| (q.m_min, *i))?;
        let m = job.m_min as usize;
        (m <= ctx.free_clusters).then_some(Placement { queue_index, m })
    }
}

/// Earliest deadline first at the admission-time `M_min`, with
/// head-of-line blocking on the most urgent job. Deadline-aware but
/// static: it never revises the partition size as slack erodes in the
/// queue.
#[derive(Debug, Clone, Copy, Default)]
pub struct EarliestDeadlineFirst;

impl SchedPolicy for EarliestDeadlineFirst {
    fn name(&self) -> &'static str {
        "edf"
    }

    fn pick(&mut self, ready: &[QueuedJob], ctx: &SchedContext<'_>) -> Option<Placement> {
        let (queue_index, job) = ready
            .iter()
            .enumerate()
            .min_by_key(|(i, q)| (q.job.absolute_deadline(), *i))?;
        let m = job.m_min as usize;
        (m <= ctx.free_clusters).then_some(Placement { queue_index, m })
    }
}

/// The model-guided packer: EDF order, but Eq. 3 is re-solved at pick
/// time against each job's *remaining* slack, so partitions grow as
/// queueing eats the budget (and never shrink below need). Jobs whose
/// recomputed partition does not fit right now are skipped and a less
/// urgent job backfills the free clusters instead of idling them.
/// Jobs that can no longer make their deadline at any size run
/// best-effort at `M_min`.
#[derive(Debug, Clone, Copy, Default)]
pub struct ModelGuided;

impl SchedPolicy for ModelGuided {
    fn name(&self) -> &'static str {
        "model_guided"
    }

    fn pick(&mut self, ready: &[QueuedJob], ctx: &SchedContext<'_>) -> Option<Placement> {
        let mut order: Vec<usize> = (0..ready.len()).collect();
        order.sort_by_key(|&i| (ready[i].job.absolute_deadline(), i));

        // First pass: most urgent job whose deadline is still winnable
        // with a partition that is free right now.
        let mut best_effort: Option<Placement> = None;
        for &i in &order {
            let q = &ready[i];
            let budget = q.job.absolute_deadline().saturating_sub(ctx.now);
            let model = &ctx.models.get(q.job.kernel).accel;
            match min_clusters(model, q.job.n, budget as f64) {
                Some(required) if required as usize <= ctx.total_clusters => {
                    let m = required.max(q.m_min) as usize;
                    if m <= ctx.free_clusters {
                        return Some(Placement { queue_index: i, m });
                    }
                    // Needs more clusters than are free: wait for a
                    // release, let someone else backfill.
                }
                _ => {
                    // Deadline already lost at any width: salvage
                    // throughput at the cheap admission-time size, but
                    // only if nothing winnable fits first.
                    let m = q.m_min as usize;
                    if best_effort.is_none() && m <= ctx.free_clusters {
                        best_effort = Some(Placement { queue_index: i, m });
                    }
                }
            }
        }
        best_effort
    }
}

/// Every built-in policy, in a fixed order (baseline first).
pub fn all_policies() -> Vec<Box<dyn SchedPolicy>> {
    vec![
        Box::new(FifoFirstFit),
        Box::new(SmallestFirst),
        Box::new(EarliestDeadlineFirst),
        Box::new(ModelGuided),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::KernelId;

    fn queued(id: u64, arrival: u64, deadline: u64, m_min: u64) -> QueuedJob {
        QueuedJob {
            job: Job {
                id,
                kernel: KernelId::Daxpy,
                n: 1024,
                arrival,
                deadline,
            },
            m_min,
            predicted: 0.0,
        }
    }

    fn ctx(table: &ModelTable, now: u64, free: usize) -> SchedContext<'_> {
        SchedContext {
            now,
            free_clusters: free,
            total_clusters: 32,
            models: table,
        }
    }

    #[test]
    fn fifo_blocks_on_the_head() {
        let table = ModelTable::paper_defaults();
        let ready = vec![queued(0, 0, 1000, 8), queued(1, 10, 1000, 1)];
        let mut fifo = FifoFirstFit;
        // Head needs 8, only 4 free: everything waits, even the 1-wide
        // second job.
        assert_eq!(fifo.pick(&ready, &ctx(&table, 0, 4)), None);
        assert_eq!(
            fifo.pick(&ready, &ctx(&table, 0, 8)),
            Some(Placement {
                queue_index: 0,
                m: 8
            })
        );
    }

    #[test]
    fn smallest_first_prefers_narrow_jobs() {
        let table = ModelTable::paper_defaults();
        let ready = vec![queued(0, 0, 1000, 8), queued(1, 10, 1000, 2)];
        assert_eq!(
            SmallestFirst.pick(&ready, &ctx(&table, 0, 4)),
            Some(Placement {
                queue_index: 1,
                m: 2
            })
        );
    }

    #[test]
    fn edf_prefers_urgent_jobs() {
        let table = ModelTable::paper_defaults();
        let ready = vec![queued(0, 0, 5000, 2), queued(1, 10, 500, 2)];
        assert_eq!(
            EarliestDeadlineFirst.pick(&ready, &ctx(&table, 0, 4)),
            Some(Placement {
                queue_index: 1,
                m: 2
            })
        );
    }

    #[test]
    fn model_guided_widens_as_slack_erodes() {
        let table = ModelTable::paper_defaults();
        // Admitted with M_min = 1 against a 1000-cycle budget
        // (t̂(1,1024) = 956). 300 cycles later the budget is 700 and
        // Eq. 3 needs five clusters.
        let ready = vec![queued(0, 0, 1000, 1)];
        let early = ModelGuided.pick(&ready, &ctx(&table, 0, 32)).unwrap();
        let late = ModelGuided.pick(&ready, &ctx(&table, 300, 32)).unwrap();
        assert_eq!(early.m, 1);
        assert!(late.m > 1, "eroded slack must widen the partition");
    }

    #[test]
    fn model_guided_backfills_past_blocked_urgent_jobs() {
        let table = ModelTable::paper_defaults();
        // Urgent job needs more clusters than are free; the later job
        // fits and should run instead of idling the machine.
        let ready = vec![queued(0, 0, 700, 13), queued(1, 0, 100_000, 1)];
        let pick = ModelGuided.pick(&ready, &ctx(&table, 0, 4)).unwrap();
        assert_eq!(pick.queue_index, 1);
    }

    #[test]
    fn policies_idle_on_an_empty_queue() {
        let table = ModelTable::paper_defaults();
        for mut policy in all_policies() {
            assert!(policy.pick(&[], &ctx(&table, 0, 32)).is_none());
            assert!(!policy.name().is_empty());
        }
    }
}
