//! Strike accounting for automatic mid-stream quarantine.
//!
//! Under [`ServiceBackend::CoSimulated`] the DMA CRC flags corrupted
//! partitions per completion (`TenantRun::corrupt_clusters`). One flag
//! is weak evidence — transients exist, and the re-dispatch path
//! already absorbs them — but the *same* cluster corrupting repeatedly
//! is a hardware diagnosis. The [`StrikeBoard`] turns per-completion
//! corruption masks into quarantine decisions with hysteresis: a
//! cluster is condemned only after [`AUTO_QUARANTINE_STRIKES`] corrupt
//! completions flagged it, so one transient never kills a cluster while
//! a flaky DMA engine is retired after a bounded amount of wasted work.
//!
//! Every decision is reported as a typed [`QuarantineEvent`] so the
//! serving layer (and its operators) can see *when* and *why* capacity
//! left the pool, not just that throughput dropped.
//!
//! [`ServiceBackend::CoSimulated`]: crate::ServiceBackend::CoSimulated

use mpsoc_noc::ClusterMask;
use serde::{Deserialize, Serialize};

/// Corrupt completions flagged on one cluster before auto-quarantine
/// fires. Three strikes: the first corruption is absorbed as a
/// transient by the re-dispatch path, the second is suspicious, the
/// third condemns the cluster.
pub const AUTO_QUARANTINE_STRIKES: u32 = 3;

/// One automatic quarantine decision: which cluster was retired, when,
/// and on how much evidence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuarantineEvent {
    /// Virtual cycle the quarantine took effect (the corrupt
    /// completion that crossed the threshold).
    pub at: u64,
    /// The cluster retired from the pool.
    pub cluster: usize,
    /// Corruption strikes accumulated when the decision fired.
    pub strikes: u32,
}

/// Per-cluster corruption strike counters with a quarantine threshold.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StrikeBoard {
    threshold: Option<u32>,
    strikes: Vec<u32>,
}

impl StrikeBoard {
    /// A board over `clusters` clusters with the default hysteresis.
    pub fn new(clusters: usize) -> Self {
        StrikeBoard::with_threshold(clusters, Some(AUTO_QUARANTINE_STRIKES))
    }

    /// A board with an explicit threshold; `None` disables automatic
    /// quarantine (strikes still accumulate and stay observable).
    pub fn with_threshold(clusters: usize, threshold: Option<u32>) -> Self {
        StrikeBoard {
            threshold,
            strikes: vec![0; clusters],
        }
    }

    /// Changes the threshold for subsequent [`StrikeBoard::record`]
    /// calls. Lowering it below an already-accumulated count fires on
    /// the *next* corrupt completion, not retroactively.
    pub fn set_threshold(&mut self, threshold: Option<u32>) {
        self.threshold = threshold;
    }

    /// Strikes accumulated against `cluster` so far.
    pub fn strikes(&self, cluster: usize) -> u32 {
        self.strikes.get(cluster).copied().unwrap_or(0)
    }

    /// Records one corrupt completion whose DMA CRC flagged the
    /// clusters in `corrupt` (a bitmask, as carried by
    /// `TenantRun::corrupt_clusters`). Already-quarantined clusters are
    /// skipped — their partitions may still be draining. Returns the
    /// mask of clusters that just crossed the threshold and must be
    /// quarantined now.
    pub fn record(&mut self, corrupt: u64, quarantined: ClusterMask) -> ClusterMask {
        let mut fire = ClusterMask::EMPTY;
        for cluster in 0..self.strikes.len() {
            if corrupt >> cluster & 1 == 0 || quarantined.contains(cluster) {
                continue;
            }
            self.strikes[cluster] += 1;
            if self.threshold.is_some_and(|t| self.strikes[cluster] >= t) {
                fire.insert(cluster);
            }
        }
        fire
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hysteresis_needs_threshold_strikes_on_the_same_cluster() {
        let mut board = StrikeBoard::new(4);
        // Two corruptions on cluster 0 plus two on cluster 1: four
        // transients fleet-wide, but no single cluster reaches three —
        // nothing fires.
        assert!(board.record(0b01, ClusterMask::EMPTY).is_empty());
        assert!(board.record(0b10, ClusterMask::EMPTY).is_empty());
        assert!(board.record(0b01, ClusterMask::EMPTY).is_empty());
        assert!(board.record(0b10, ClusterMask::EMPTY).is_empty());
        // The third strike on cluster 0 condemns exactly cluster 0.
        let fire = board.record(0b01, ClusterMask::EMPTY);
        assert_eq!(fire, ClusterMask::single(0));
        assert_eq!(board.strikes(0), 3);
        assert_eq!(board.strikes(1), 2);
    }

    #[test]
    fn quarantined_clusters_stop_accumulating() {
        let mut board = StrikeBoard::new(2);
        let q = ClusterMask::single(0);
        for _ in 0..5 {
            assert!(board.record(0b01, q).is_empty());
        }
        assert_eq!(board.strikes(0), 0, "drained partitions add no strikes");
    }

    #[test]
    fn disabled_threshold_never_fires_but_still_counts() {
        let mut board = StrikeBoard::with_threshold(2, None);
        for _ in 0..10 {
            assert!(board.record(0b11, ClusterMask::EMPTY).is_empty());
        }
        assert_eq!(board.strikes(1), 10);
    }

    #[test]
    fn one_completion_can_condemn_several_clusters() {
        let mut board = StrikeBoard::with_threshold(4, Some(1));
        let fire = board.record(0b0110, ClusterMask::EMPTY);
        assert_eq!(fire.iter().collect::<Vec<_>>(), vec![1, 2]);
    }
}
