//! An incremental, open-ended scheduling engine: one shard of a serving
//! fleet.
//!
//! [`Engine::run`](crate::Engine::run) consumes a complete, pre-sorted
//! job stream — the
//! right shape for closed experiments, the wrong one for a serving
//! front-end where jobs arrive over a wire and completions must be
//! reported as they happen. [`ShardSim`] exposes the same scheduling
//! semantics (admission → spatial allocation → policy-driven dispatch
//! over a [`ServiceBackend`]) as an *incremental* state machine:
//!
//! - [`ShardSim::advance`] drives virtual time forward to a horizon,
//!   retiring completions and re-dispatching the queue after each one;
//! - [`ShardSim::offer`] presents one arriving job and returns its
//!   admission fate immediately (queued, host, or rejected — including
//!   the serving-specific [`RejectReason::QueueFull`] backpressure);
//! - [`ShardSim::steal`]/[`ShardSim::inject`] move *queued-but-unstarted*
//!   jobs between shards — the work-stealing primitive of a fleet load
//!   balancer;
//! - [`ShardSim::drain_finished`] yields completed [`JobRecord`]s in
//!   completion order.
//!
//! Event ordering matches the engine exactly: completions retire before
//! same-cycle arrivals (drive `advance(t)` before `offer`ing an arrival
//! at `t`), the policy re-picks after every event, and host-fallback
//! jobs serialize on the virtual host server. Fed an identical stream,
//! a `ShardSim` reproduces `Engine::run`'s records field-for-field (see
//! the equivalence tests), so fleet results compose from the same
//! building block the closed-loop studies use.
//!
//! Under [`ServiceBackend::CoSimulated`] the shard drives its own shared
//! SoC session and — like the engine — re-dispatches a tenant whose
//! completion carries the observable corruption signal
//! (`corrupt_clusters`), bounded by [`COSIM_MAX_REDISPATCH`]; the
//! re-dispatch count lands in [`JobRecord::retries`]. Corrupt
//! completions also accumulate per-cluster strikes
//! ([`crate::StrikeBoard`]): a cluster flagged
//! [`crate::AUTO_QUARANTINE_STRIKES`] times is quarantined mid-stream —
//! allocator pool shrink, degraded admission, measured-cache and
//! cost-gate invalidation — and reported as a typed
//! [`QuarantineEvent`].

use std::collections::BTreeMap;

use mpsoc_noc::ClusterMask;
use mpsoc_sim::Cycle;

use crate::admission::{AdmissionController, AdmissionDecision, RejectReason};
use crate::alloc::Allocator;
use crate::calibrate::ModelTable;
use crate::cost_gate::CostGate;
use crate::error::SchedError;
use crate::job::Job;
use crate::metrics::{JobOutcome, JobRecord};
use crate::policy::{Placement, QueuedJob, SchedContext, SchedPolicy};
use crate::quarantine::{QuarantineEvent, StrikeBoard};
use crate::service::ServiceBackend;

/// Bounded re-dispatch budget for co-simulated tenants that complete
/// with the DMA corruption flag set: the scheduler re-submits on the
/// same partition with fresh fault dice up to this many times, then
/// accepts the result as-is (matching the resilient runtime's bounded
/// retry discipline).
pub const COSIM_MAX_REDISPATCH: u32 = 3;

/// What [`ShardSim::offer`] decided about one arriving job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ShardDecision {
    /// Admitted for offload; waiting for (or already granted) clusters.
    Queued {
        /// Eq. 3 minimum partition.
        m_min: u64,
        /// Predicted runtime at `m_min` (cycles).
        predicted: f64,
    },
    /// Sent to the shard's serial host server; completes at `finish`.
    Host {
        /// Cycle the host will begin the job.
        start: u64,
        /// Cycle the host will finish it.
        finish: u64,
    },
    /// Turned away (admission or queue-depth backpressure).
    Rejected {
        /// Why.
        reason: RejectReason,
    },
}

/// The learned Eq. 1 prediction for one admitted job next to its static
/// `[best, worst]` envelope at the admission-time `M_min` — the
/// residual signal a serving front-end aggregates to detect model
/// drift (a prediction outside the envelope is provably mis-calibrated
/// for solo execution).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostCheck {
    /// Static best-case total at `M_min` (cycles).
    pub best: u64,
    /// Static worst-case total at `M_min` (cycles).
    pub worst: u64,
    /// The Eq. 1 model's predicted runtime at `M_min` (cycles).
    pub predicted: f64,
}

/// One job in flight (placed on a partition, or a scheduled host run).
#[derive(Debug, Clone, Copy)]
struct InFlight {
    job: Job,
    m_min: u64,
    predicted: f64,
    mask: ClusterMask,
    start: u64,
    m: usize,
    host: bool,
    retries: u32,
    faults: u64,
    contention: u64,
}

/// An incremental single-machine scheduler: admission, allocation and
/// dispatch over a service backend, driven event-by-event.
pub struct ShardSim {
    admission: AdmissionController,
    backend: ServiceBackend,
    clusters: usize,
    allocator: Allocator,
    policy: Box<dyn SchedPolicy>,
    queue_limit: Option<usize>,
    now: u64,
    host_free_at: u64,
    seq: u64,
    ready: Vec<QueuedJob>,
    /// Virtual-time completion events, keyed `(finish, sequence)`.
    completions: BTreeMap<(u64, u64), InFlight>,
    /// Co-simulated tenants keyed by their session job handle.
    running: BTreeMap<mpsoc_offload::JobId, InFlight>,
    finished: Vec<JobRecord>,
    backlog_cycles: f64,
    busy_cluster_cycles: u64,
    completed_jobs: u64,
    cost_gate: Option<CostGate>,
    last_cost_check: Option<CostCheck>,
    quarantined: ClusterMask,
    strikes: StrikeBoard,
    quarantine_events: Vec<QuarantineEvent>,
}

impl ShardSim {
    /// A shard over a machine of `clusters` clusters, dispatching with
    /// `policy` over `backend`.
    pub fn new(
        table: ModelTable,
        clusters: usize,
        backend: ServiceBackend,
        policy: Box<dyn SchedPolicy>,
    ) -> Self {
        let mut backend = backend;
        if let ServiceBackend::CoSimulated { offloader, .. } = &mut backend {
            offloader.begin_jobs();
        }
        ShardSim {
            admission: AdmissionController::new(table, clusters as u64),
            backend,
            clusters,
            allocator: Allocator::new(clusters),
            policy,
            queue_limit: None,
            now: 0,
            host_free_at: 0,
            seq: 0,
            ready: Vec::new(),
            completions: BTreeMap::new(),
            running: BTreeMap::new(),
            finished: Vec::new(),
            backlog_cycles: 0.0,
            busy_cluster_cycles: 0,
            completed_jobs: 0,
            cost_gate: None,
            last_cost_check: None,
            quarantined: ClusterMask::EMPTY,
            strikes: StrikeBoard::new(clusters),
            quarantine_events: Vec::new(),
        }
    }

    /// Retires `mask` from this shard's pool mid-stream — the
    /// incremental counterpart of [`Engine::quarantine`]. The allocator
    /// stops granting the clusters (busy ones are withheld at release),
    /// admission reasons against the surviving pool (typed
    /// [`RejectReason::DegradedMachine`] rejections), and — exactly
    /// like the engine — the measured backend's memoized solo-run
    /// timings and the cost gate's static memos are dropped: both were
    /// computed against a machine that no longer exists, and stale
    /// entries would admit jobs on bounds the degraded shard cannot
    /// realize. Each newly retired cluster is logged as a
    /// [`QuarantineEvent`].
    ///
    /// [`Engine::quarantine`]: crate::Engine::quarantine
    pub fn quarantine(&mut self, mask: ClusterMask) {
        let mask = mask
            .intersection(ClusterMask::first(self.clusters))
            .without(self.quarantined);
        if mask.is_empty() {
            return;
        }
        self.quarantined = self.quarantined.union(mask);
        self.allocator.quarantine(mask);
        self.backend.invalidate_measurements();
        let healthy = self.clusters - self.quarantined.count();
        if let Some(gate) = self.cost_gate.as_mut() {
            gate.restrict_clusters(healthy);
        }
        for cluster in mask.iter() {
            self.quarantine_events.push(QuarantineEvent {
                at: self.now,
                cluster,
                strikes: self.strikes.strikes(cluster),
            });
        }
    }

    /// Configures automatic quarantine: a cluster is retired after
    /// `threshold` corrupt co-simulated completions flagged it (default
    /// [`crate::AUTO_QUARANTINE_STRIKES`]); `None` disables the closed
    /// loop so corruption is absorbed by re-dispatch alone.
    pub fn set_auto_quarantine(&mut self, threshold: Option<u32>) {
        self.strikes.set_threshold(threshold);
    }

    /// The clusters currently quarantined.
    pub fn quarantined(&self) -> ClusterMask {
        self.quarantined
    }

    /// Healthy (non-quarantined) clusters — the shard's *effective*
    /// capacity, which a fleet balancer should weight by instead of the
    /// configured size.
    pub fn healthy_clusters(&self) -> usize {
        self.clusters - self.quarantined.count()
    }

    /// Takes the quarantine decisions (manual and automatic) made since
    /// the last drain, in firing order.
    pub fn drain_quarantine_events(&mut self) -> Vec<QuarantineEvent> {
        std::mem::take(&mut self.quarantine_events)
    }

    /// Enables static cost verification: offered jobs whose deadline
    /// undercuts the static best-case runtime bound are rejected with
    /// [`RejectReason::StaticInfeasible`] before Eq. 3 runs, and every
    /// queued admission records a [`CostCheck`] residual (see
    /// [`ShardSim::take_cost_check`]).
    pub fn enable_cost(&mut self, gate: CostGate) {
        self.cost_gate = Some(gate);
    }

    /// Takes the prediction-vs-static-bounds residual of the most recent
    /// queued admission, if a cost gate is enabled and the bounds were
    /// computable. Cleared on read so callers see each admission once.
    pub fn take_cost_check(&mut self) -> Option<CostCheck> {
        self.last_cost_check.take()
    }

    /// Caps the admitted-but-unstarted queue: once `limit` jobs wait,
    /// further offload admissions are rejected with
    /// [`RejectReason::QueueFull`] — the shard's backpressure signal.
    /// Host-fallback jobs bypass the cap (they occupy the host server,
    /// not the cluster queue).
    pub fn set_queue_limit(&mut self, limit: usize) {
        self.queue_limit = Some(limit);
    }

    /// Current virtual time (the latest horizon or event retired).
    pub fn now(&self) -> u64 {
        self.now
    }

    /// The machine size.
    pub fn clusters(&self) -> usize {
        self.clusters
    }

    /// Clusters currently free.
    pub fn free_clusters(&self) -> usize {
        self.allocator.free_count()
    }

    /// Admitted jobs waiting for clusters.
    pub fn queue_depth(&self) -> usize {
        self.ready.len()
    }

    /// Jobs currently occupying partitions or the host server.
    pub fn in_flight(&self) -> usize {
        self.completions.len() + self.running.len()
    }

    /// Predicted cluster-cycles of work admitted but not yet finished
    /// (queued + in flight, at the admission-time `M_min` estimate) —
    /// the load signal a fleet balancer compares across shards.
    pub fn backlog_cycles(&self) -> f64 {
        self.backlog_cycles
    }

    /// Busy cluster-cycles accumulated by retired offloads.
    pub fn busy_cluster_cycles(&self) -> u64 {
        self.busy_cluster_cycles
    }

    /// Jobs retired so far (offloaded + host).
    pub fn completed_jobs(&self) -> u64 {
        self.completed_jobs
    }

    /// The admission controller's model table.
    pub fn models(&self) -> &ModelTable {
        self.admission.table()
    }

    /// Takes every record finished since the last drain, in completion
    /// order (rejections appear at their offer time).
    pub fn drain_finished(&mut self) -> Vec<JobRecord> {
        std::mem::take(&mut self.finished)
    }

    /// Drives virtual time to `until` (inclusive): retires every
    /// completion at or before it, re-dispatching the queue after each
    /// event. `u64::MAX` means "retire everything currently in flight"
    /// without advancing the clock past the last real event.
    ///
    /// # Errors
    ///
    /// Service-backend failures; [`SchedError::SessionStalled`] can
    /// surface from [`ShardSim::drain`], not from a bounded advance.
    pub fn advance(&mut self, until: u64) -> Result<(), SchedError> {
        let _prof = mpsoc_sim::profile::scope("sched.shard.advance");
        if matches!(self.backend, ServiceBackend::CoSimulated { .. }) {
            self.advance_cosimulated(until)?;
        } else {
            while let Some((&(t, _), _)) = self.completions.iter().next() {
                if t > until {
                    break;
                }
                self.now = t;
                while let Some((&key @ (tt, _), _)) = self.completions.iter().next() {
                    if tt > t {
                        break;
                    }
                    let done = self.completions.remove(&key).expect("key just observed");
                    self.retire(done, t);
                }
                self.dispatch()?;
            }
        }
        if until != u64::MAX {
            self.now = self.now.max(until);
        }
        Ok(())
    }

    /// Runs the shard dry: advances until the queue is empty and nothing
    /// is in flight.
    ///
    /// # Errors
    ///
    /// [`SchedError::SessionStalled`] when in-flight work stops making
    /// progress (a wedged co-simulated tenant under injected faults).
    pub fn drain(&mut self) -> Result<(), SchedError> {
        loop {
            let retired = self.completed_jobs;
            self.advance(u64::MAX)?;
            if self.ready.is_empty() && self.in_flight() == 0 {
                return Ok(());
            }
            if self.completed_jobs == retired {
                // Mid-stream quarantine can strand queued jobs whose
                // Eq. 3 minimum partition no longer fits the surviving
                // pool. With nothing in flight they can never start:
                // resolve them as typed degraded rejections — a served
                // "no" — instead of reporting a wedged session.
                if self.in_flight() == 0 && self.reject_stranded() {
                    continue;
                }
                return Err(SchedError::SessionStalled {
                    in_flight: self.in_flight(),
                });
            }
        }
    }

    /// Rejects queued jobs whose minimum partition exceeds the healthy
    /// pool (they were admitted before quarantine shrank the machine).
    /// Returns whether anything was resolved.
    fn reject_stranded(&mut self) -> bool {
        let stranded = self.evict_unservable();
        if stranded.is_empty() {
            return false;
        }
        for q in stranded {
            self.reject_evicted(q);
        }
        true
    }

    /// Removes and returns the queued-but-unstarted jobs whose minimum
    /// partition exceeds the healthy pool, in arrival order. Under a
    /// strict-FIFO policy such a job would otherwise wedge the queue
    /// head mid-stream: it can never start, and everything behind it
    /// waits until drain. A fleet calls this after quarantine shrinks a
    /// shard and either re-places the evicted jobs on a shard that still
    /// fits them or resolves them via [`ShardSim::reject_evicted`].
    pub fn evict_unservable(&mut self) -> Vec<QueuedJob> {
        let healthy = self.healthy_clusters() as u64;
        let mut evicted = Vec::new();
        let mut i = 0;
        while i < self.ready.len() {
            if self.ready[i].m_min > healthy {
                let q = self.ready.remove(i);
                self.backlog_cycles -= q.predicted * q.m_min as f64;
                evicted.push(q);
            } else {
                i += 1;
            }
        }
        evicted
    }

    /// Resolves an evicted (or failed-over-but-unplaceable) job as a
    /// typed [`RejectReason::DegradedMachine`] rejection against this
    /// shard's surviving pool — a served "no", counted exactly once like
    /// any other rejection.
    pub fn reject_evicted(&mut self, q: QueuedJob) {
        let healthy = self.healthy_clusters() as u64;
        self.push_rejection(
            q.job,
            RejectReason::DegradedMachine {
                required: q.m_min,
                healthy,
            },
        );
    }

    /// Presents one arriving job (arrivals must be offered in
    /// non-decreasing time order, after `advance(job.arrival)`); decides
    /// its fate and schedules it. The returned decision is also recorded
    /// (rejections immediately, completions when they retire).
    ///
    /// # Errors
    ///
    /// Service-backend failures measuring or submitting the job.
    pub fn offer(&mut self, job: Job) -> Result<ShardDecision, SchedError> {
        self.now = self.now.max(job.arrival);
        if let Some(gate) = self.cost_gate.as_mut() {
            if let Some(best) = gate.check(&job) {
                let reason = RejectReason::StaticInfeasible { best };
                self.push_rejection(job, reason);
                return Ok(ShardDecision::Rejected { reason });
            }
        }
        let decision = match self
            .admission
            .admit_degraded(&job, self.healthy_clusters() as u64)
        {
            AdmissionDecision::Offload { m_min, predicted } => {
                if self
                    .queue_limit
                    .is_some_and(|limit| self.ready.len() >= limit)
                {
                    let reason = RejectReason::QueueFull {
                        depth: self.ready.len() as u64,
                    };
                    self.push_rejection(job, reason);
                    ShardDecision::Rejected { reason }
                } else {
                    self.ready.push(QueuedJob {
                        job,
                        m_min,
                        predicted,
                    });
                    self.backlog_cycles += predicted * m_min as f64;
                    if let Some(gate) = self.cost_gate.as_mut() {
                        self.last_cost_check = gate
                            .envelope(job.kernel, job.n, m_min as usize)
                            .map(|env| CostCheck {
                                best: env.best,
                                worst: env.worst,
                                predicted,
                            });
                    }
                    self.dispatch()?;
                    ShardDecision::Queued { m_min, predicted }
                }
            }
            AdmissionDecision::Host { .. } => {
                let start = self.now.max(self.host_free_at);
                let cycles = self.host_cycles(job)?;
                let finish = start + cycles;
                self.host_free_at = finish;
                self.completions.insert(
                    (finish, self.seq),
                    InFlight {
                        job,
                        m_min: 0,
                        predicted: 0.0,
                        mask: ClusterMask::EMPTY,
                        start,
                        m: 0,
                        host: true,
                        retries: 0,
                        faults: 0,
                        contention: 0,
                    },
                );
                self.seq += 1;
                ShardDecision::Host { start, finish }
            }
            AdmissionDecision::Reject { reason } => {
                self.push_rejection(job, reason);
                ShardDecision::Rejected { reason }
            }
        };
        Ok(decision)
    }

    /// Retracts the rejection record this shard just logged for
    /// `job_id`, so a balancer that re-offers the job elsewhere (and
    /// finds a taker) keeps the fleet log exactly-once. Only the *most
    /// recent* finished record is eligible — a rejection stops being
    /// retractable as soon as anything else resolves after it — and
    /// only rejections can be withdrawn. Returns whether a record was
    /// removed.
    pub fn withdraw_rejection(&mut self, job_id: u64) -> bool {
        let retractable = matches!(
            self.finished.last(),
            Some(JobRecord {
                job,
                outcome: JobOutcome::Rejected { .. },
                ..
            }) if job.id == job_id
        );
        if retractable {
            self.finished.pop();
        }
        retractable
    }

    /// Removes the most recently admitted queued-but-unstarted job for
    /// another shard to run, or `None` when the queue is empty. Stealing
    /// from the tail leaves the oldest (most slack-starved) jobs on the
    /// shard that admitted them.
    pub fn steal(&mut self) -> Option<QueuedJob> {
        let stolen = self.ready.pop()?;
        self.backlog_cycles -= stolen.predicted * stolen.m_min as f64;
        Some(stolen)
    }

    /// Accepts a job stolen from another shard: it joins the queue with
    /// its admission solution intact and competes for clusters under
    /// this shard's policy.
    ///
    /// # Errors
    ///
    /// Service-backend failures dispatching the queue.
    pub fn inject(&mut self, stolen: QueuedJob) -> Result<(), SchedError> {
        self.backlog_cycles += stolen.predicted * stolen.m_min as f64;
        self.ready.push(stolen);
        self.dispatch()
    }

    /// Host runtime lookup mirroring the engine: memoized measurement
    /// under the measured/co-simulated backends, a model prediction
    /// under the analytic one.
    fn host_cycles(&mut self, job: Job) -> Result<u64, SchedError> {
        match &mut self.backend {
            ServiceBackend::CoSimulated {
                offloader,
                seed,
                host_cache,
                ..
            } => {
                if let Some(&c) = host_cache.get(&(job.kernel, job.n)) {
                    return Ok(c);
                }
                let (x, y) = crate::calibrate::operands(job.n, *seed ^ job.n);
                let (c, _) = offloader.run_on_host(job.kernel.instantiate().as_ref(), &x, &y)?;
                host_cache.insert((job.kernel, job.n), c);
                Ok(c)
            }
            other => other.host_cycles(job.kernel, job.n),
        }
    }

    fn push_rejection(&mut self, job: Job, reason: RejectReason) {
        self.finished.push(JobRecord {
            job,
            outcome: JobOutcome::Rejected { reason },
            contention_cycles: 0,
            retries: 0,
            faults_observed: 0,
        });
    }

    /// Retires one virtual-time completion into the finished log.
    fn retire(&mut self, done: InFlight, finish: u64) {
        let outcome = if done.host {
            JobOutcome::Host {
                start: done.start,
                finish,
            }
        } else {
            self.allocator.release(done.mask);
            self.backlog_cycles -= done.predicted * done.m_min as f64;
            self.busy_cluster_cycles += (finish - done.start) * done.m as u64;
            JobOutcome::Offloaded {
                start: done.start,
                finish,
                m: done.m,
            }
        };
        self.completed_jobs += 1;
        self.finished.push(JobRecord {
            job: done.job,
            outcome,
            contention_cycles: done.contention,
            retries: done.retries,
            faults_observed: done.faults,
        });
    }

    /// Lets the policy place queued jobs until it passes.
    fn dispatch(&mut self) -> Result<(), SchedError> {
        loop {
            let ctx = SchedContext {
                now: self.now,
                free_clusters: self.allocator.free_count(),
                total_clusters: self.healthy_clusters(),
                models: self.admission.table(),
            };
            let Some(Placement { queue_index, m }) = self.policy.pick(&self.ready, &ctx) else {
                return Ok(());
            };
            assert!(queue_index < self.ready.len(), "policy picked a ghost job");
            let queued = self.ready.remove(queue_index);
            let mask = self
                .allocator
                .carve(m)
                .unwrap_or_else(|| panic!("policy over-allocated: {m} clusters not free"));
            let placed = InFlight {
                job: queued.job,
                m_min: queued.m_min,
                predicted: queued.predicted,
                mask,
                start: self.now,
                m,
                host: false,
                retries: 0,
                faults: 0,
                contention: 0,
            };
            match &mut self.backend {
                ServiceBackend::CoSimulated {
                    offloader,
                    seed,
                    strategy,
                    ..
                } => {
                    let (x, y) = crate::calibrate::operands(queued.job.n, *seed ^ queued.job.n);
                    let handle = offloader.submit_at(
                        queued.job.kernel.instantiate().as_ref(),
                        &x,
                        &y,
                        mask,
                        *strategy,
                        Cycle::new(self.now),
                    )?;
                    self.running.insert(handle, placed);
                }
                other => {
                    let cycles = other.offload_cycles(queued.job.kernel, queued.job.n, mask)?;
                    self.completions
                        .insert((self.now + cycles, self.seq), placed);
                    self.seq += 1;
                }
            }
        }
    }

    /// The co-simulated advance loop: one shared SoC session carries
    /// every placed tenant; host-fallback completions interleave at
    /// their scheduled virtual times.
    fn advance_cosimulated(&mut self, until: u64) -> Result<(), SchedError> {
        loop {
            // Host completions scheduled before the next session event
            // retire first (both are virtual-time ordered).
            let next_host = self.completions.keys().next().map(|&(t, _)| t);
            if let Some(t) = next_host.filter(|&t| t <= until) {
                // Retire host runs up to the next session completion: we
                // must interleave, so peek the session only as far as
                // the host event.
                if self.running.is_empty() {
                    self.now = t;
                    while let Some((&key @ (tt, _), _)) = self.completions.iter().next() {
                        if tt > t {
                            break;
                        }
                        let done = self.completions.remove(&key).expect("key just observed");
                        self.retire(done, t);
                    }
                    self.dispatch()?;
                    continue;
                }
            }
            if self.running.is_empty() && next_host.map_or(true, |t| t > until) {
                break;
            }
            // Advance the session no further than the earliest scheduled
            // host completion, so host and session events retire in
            // global time order.
            let horizon = next_host.map_or(until, |t| t.min(until));
            let step = {
                let ServiceBackend::CoSimulated { offloader, .. } = &mut self.backend else {
                    unreachable!("advance_cosimulated requires a co-simulated backend");
                };
                if self.running.is_empty() {
                    mpsoc_offload::SessionStep::Idle
                } else {
                    offloader.advance_jobs(Cycle::new(horizon))?
                }
            };
            match step {
                mpsoc_offload::SessionStep::Completed(t) => {
                    self.retire_cosimulated(*t)?;
                    self.dispatch()?;
                }
                mpsoc_offload::SessionStep::Horizon | mpsoc_offload::SessionStep::Idle => {
                    // No session event before `horizon`: retire the host
                    // completions there, or stop at the caller's bound.
                    match next_host.filter(|&t| t <= until) {
                        Some(t) => {
                            self.now = t;
                            while let Some((&key @ (tt, _), _)) = self.completions.iter().next() {
                                if tt > t {
                                    break;
                                }
                                let done =
                                    self.completions.remove(&key).expect("key just observed");
                                self.retire(done, t);
                            }
                            self.dispatch()?;
                        }
                        None => break,
                    }
                }
            }
        }
        Ok(())
    }

    /// Retires (or corruption-re-dispatches) one co-simulated tenant.
    fn retire_cosimulated(&mut self, t: mpsoc_offload::TenantRun) -> Result<(), SchedError> {
        let Some(mut done) = self.running.remove(&t.job) else {
            return Err(SchedError::UnknownCompletion { job: t.job });
        };
        let finish = t.finished_at.as_u64();
        self.now = self.now.max(finish);
        done.faults += t.faults_injected;
        done.contention += t.contention.total_cycles();
        if t.corrupt_clusters != 0 {
            // Strike accounting on every corrupt completion — including
            // a final attempt whose retry budget is exhausted — so a
            // flaky cluster is diagnosed even while re-dispatch keeps
            // absorbing its output. Crossing the hysteresis threshold
            // quarantines the cluster mid-stream, with no external
            // `quarantine` call involved.
            let fire = self.strikes.record(t.corrupt_clusters, self.quarantined);
            if !fire.is_empty() {
                self.quarantine(fire);
            }
        }
        if t.corrupt_clusters != 0 && done.retries < COSIM_MAX_REDISPATCH {
            // Observable corruption: re-dispatch on the same partition
            // with fresh fault dice, charging the retry to the record.
            done.retries += 1;
            let ServiceBackend::CoSimulated {
                offloader,
                seed,
                strategy,
                ..
            } = &mut self.backend
            else {
                unreachable!("co-simulated completion without a co-simulated backend");
            };
            let (x, y) = crate::calibrate::operands(done.job.n, *seed ^ done.job.n);
            let handle = offloader.submit_at(
                done.job.kernel.instantiate().as_ref(),
                &x,
                &y,
                done.mask,
                *strategy,
                t.finished_at,
            )?;
            self.running.insert(handle, done);
            return Ok(());
        }
        self.allocator.release(done.mask);
        self.backlog_cycles -= done.predicted * done.m_min as f64;
        self.busy_cluster_cycles += (finish - done.start) * done.m as u64;
        self.completed_jobs += 1;
        self.finished.push(JobRecord {
            job: done.job,
            outcome: JobOutcome::Offloaded {
                start: done.start,
                finish,
                m: done.m,
            },
            contention_cycles: done.contention,
            retries: done.retries,
            faults_observed: done.faults,
        });
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::KernelId;
    use crate::policy::FifoFirstFit;
    use crate::Engine;

    fn jobs(specs: &[(u64, u64, u64)]) -> Vec<Job> {
        specs
            .iter()
            .enumerate()
            .map(|(i, &(arrival, n, deadline))| Job {
                id: i as u64,
                kernel: KernelId::Daxpy,
                n,
                arrival,
                deadline,
            })
            .collect()
    }

    fn shard(clusters: usize, backend: ServiceBackend) -> ShardSim {
        ShardSim::new(
            ModelTable::paper_defaults(),
            clusters,
            backend,
            Box::new(FifoFirstFit),
        )
    }

    fn run_stream(shard: &mut ShardSim, stream: &[Job]) -> Vec<JobRecord> {
        for job in stream {
            shard.advance(job.arrival).expect("advance");
            shard.offer(*job).expect("offer");
        }
        shard.drain().expect("drain");
        let mut records = shard.drain_finished();
        records.sort_by_key(|r| r.job.id);
        records
    }

    /// The contract that licenses fleet results: fed the same stream, a
    /// shard reproduces the closed-loop engine's records exactly.
    #[test]
    fn shard_matches_engine_on_an_analytic_stream() {
        let stream = jobs(&[
            (0, 1024, 1000),
            (0, 1024, 1000),
            (0, 2048, 2000),
            (100, 256, 100_000),
            (150, 1024, 300),
            (500, 4096, 9000),
            (500, 64, 100_000),
        ]);
        let table = ModelTable::paper_defaults();
        let mut engine = Engine::new(table.clone(), 4, ServiceBackend::analytic(table.clone()));
        let want = engine.run(&stream, &mut FifoFirstFit).expect("engine");
        let mut s = shard(4, ServiceBackend::analytic(table));
        let got = run_stream(&mut s, &stream);
        assert_eq!(got, want.records);
    }

    #[test]
    fn shard_matches_engine_on_a_cosimulated_stream() {
        let stream = jobs(&[
            (0, 1024, 2000),
            (0, 2048, 4000),
            (100, 256, 100_000),
            (500, 4096, 9000),
        ]);
        let table = ModelTable::paper_defaults();
        let mk_backend = || {
            let offloader =
                mpsoc_offload::Offloader::new(mpsoc_soc::SocConfig::with_clusters(8)).expect("soc");
            ServiceBackend::co_simulated(offloader, 0xBEEF)
        };
        let mut engine = Engine::new(table.clone(), 8, mk_backend());
        let want = engine.run(&stream, &mut FifoFirstFit).expect("engine");
        let mut s = shard(8, mk_backend());
        let got = run_stream(&mut s, &stream);
        assert_eq!(got, want.records);
    }

    #[test]
    fn queue_limit_rejects_with_queue_full() {
        // A 1-cluster machine: the first job runs, the second queues,
        // the third hits the cap.
        let table = ModelTable::paper_defaults();
        let mut s = shard(1, ServiceBackend::analytic(table));
        s.set_queue_limit(1);
        let stream = jobs(&[(0, 1024, 100_000), (0, 1024, 100_000), (0, 1024, 100_000)]);
        assert!(matches!(
            s.offer(stream[0]).unwrap(),
            ShardDecision::Queued { .. }
        ));
        assert!(matches!(
            s.offer(stream[1]).unwrap(),
            ShardDecision::Queued { .. }
        ));
        match s.offer(stream[2]).unwrap() {
            ShardDecision::Rejected {
                reason: RejectReason::QueueFull { depth },
            } => assert_eq!(depth, 1),
            other => panic!("expected QueueFull, got {other:?}"),
        }
        s.drain().expect("drain");
        let records = s.drain_finished();
        assert_eq!(records.len(), 3);
        assert_eq!(s.completed_jobs(), 2);
    }

    #[test]
    fn steal_moves_queued_work_between_shards() {
        let table = ModelTable::paper_defaults();
        // Donor: 1 cluster, so the second job queues.
        let mut donor = shard(1, ServiceBackend::analytic(table.clone()));
        let stream = jobs(&[(0, 1024, 100_000), (0, 1024, 100_000)]);
        donor.offer(stream[0]).unwrap();
        donor.offer(stream[1]).unwrap();
        assert_eq!(donor.queue_depth(), 1);
        let backlog_before = donor.backlog_cycles();

        let stolen = donor.steal().expect("queued job to steal");
        assert_eq!(stolen.job.id, 1);
        assert_eq!(donor.queue_depth(), 0);
        assert!(donor.backlog_cycles() < backlog_before);
        assert!(donor.steal().is_none(), "nothing left to steal");

        // Thief: idle 1-cluster shard runs the stolen job immediately.
        let mut thief = shard(1, ServiceBackend::analytic(table));
        thief.inject(stolen).expect("inject");
        assert_eq!(thief.queue_depth(), 0, "stolen job dispatched at once");
        thief.drain().expect("drain");
        let records = thief.drain_finished();
        assert_eq!(records.len(), 1);
        assert!(matches!(
            records[0].outcome,
            JobOutcome::Offloaded { start: 0, .. }
        ));

        donor.drain().expect("drain");
        assert_eq!(donor.completed_jobs(), 1);
    }

    #[test]
    fn backlog_tracks_admitted_unfinished_work() {
        let table = ModelTable::paper_defaults();
        let mut s = shard(2, ServiceBackend::analytic(table));
        assert_eq!(s.backlog_cycles(), 0.0);
        let stream = jobs(&[(0, 1024, 100_000), (0, 2048, 100_000)]);
        s.offer(stream[0]).unwrap();
        let after_one = s.backlog_cycles();
        assert!(after_one > 0.0);
        s.offer(stream[1]).unwrap();
        assert!(s.backlog_cycles() > after_one);
        s.drain().expect("drain");
        assert!(
            s.backlog_cycles().abs() < 1e-9,
            "drained shard owes nothing"
        );
        assert!(s.busy_cluster_cycles() > 0);
    }

    #[test]
    fn cosimulated_shard_redispatches_on_corruption() {
        let mut offloader =
            mpsoc_offload::Offloader::new(mpsoc_soc::SocConfig::with_clusters(4)).expect("soc");
        let mut plan = mpsoc_soc::FaultPlan::with_seed(31);
        plan.dma_corrupt = mpsoc_soc::SiteSpec::once_at(0);
        offloader.install_faults(plan);
        let mut s = shard(4, ServiceBackend::co_simulated(offloader, 0xBEEF));
        let stream = jobs(&[(0, 1024, 100_000)]);
        s.offer(stream[0]).unwrap();
        s.drain().expect("drain");
        let records = s.drain_finished();
        assert_eq!(records.len(), 1);
        assert_eq!(
            records[0].retries, 1,
            "corruption must cost one re-dispatch"
        );
        assert!(records[0].faults_observed >= 1);
        assert!(matches!(records[0].outcome, JobOutcome::Offloaded { .. }));
        // Hysteresis: one transient corruption is below the strike
        // threshold — the cluster survives.
        assert!(
            s.quarantined().is_empty(),
            "a single transient must not quarantine anything"
        );
        assert!(s.drain_quarantine_events().is_empty());
    }

    #[test]
    fn persistent_corruption_auto_quarantines_mid_stream() {
        // Every DMA burst corrupts: each tenant burns its full retry
        // budget (4 corrupt completions = 4 strikes on its cluster), so
        // each busy cluster crosses the 3-strike threshold and is
        // quarantined mid-stream with no explicit `quarantine` call.
        // The queued fifth job is stranded on a fully dead machine and
        // must resolve as a typed degraded rejection.
        let mut offloader =
            mpsoc_offload::Offloader::new(mpsoc_soc::SocConfig::with_clusters(4)).expect("soc");
        let mut plan = mpsoc_soc::FaultPlan::with_seed(7);
        plan.dma_corrupt = mpsoc_soc::SiteSpec::rate(1.0);
        offloader.install_faults(plan);
        let mut s = shard(4, ServiceBackend::co_simulated(offloader, 0xBEEF));
        let stream = jobs(&[(0, 1024, 100_000); 5]);
        for job in &stream {
            s.offer(*job).expect("offer");
        }
        s.drain()
            .expect("drain resolves the stranded job, not stalls");
        assert_eq!(s.healthy_clusters(), 0, "all four clusters condemned");
        let events = s.drain_quarantine_events();
        assert_eq!(events.len(), 4);
        assert!(events.iter().all(|e| e.strikes >= 3 && e.at > 0));
        let mut records = s.drain_finished();
        records.sort_by_key(|r| r.job.id);
        assert_eq!(records.len(), 5);
        let offloaded = records
            .iter()
            .filter(|r| matches!(r.outcome, JobOutcome::Offloaded { .. }))
            .count();
        assert_eq!(offloaded, 4, "in-flight tenants still complete");
        match records[4].outcome {
            JobOutcome::Rejected {
                reason: RejectReason::DegradedMachine { healthy, .. },
            } => assert_eq!(healthy, 0),
            other => panic!("expected a degraded rejection, got {other:?}"),
        }
    }

    #[test]
    fn disabled_auto_quarantine_leaves_the_pool_intact() {
        let mut offloader =
            mpsoc_offload::Offloader::new(mpsoc_soc::SocConfig::with_clusters(4)).expect("soc");
        let mut plan = mpsoc_soc::FaultPlan::with_seed(7);
        plan.dma_corrupt = mpsoc_soc::SiteSpec::rate(1.0);
        offloader.install_faults(plan);
        let mut s = shard(4, ServiceBackend::co_simulated(offloader, 0xBEEF));
        s.set_auto_quarantine(None);
        let stream = jobs(&[(0, 1024, 100_000); 5]);
        for job in &stream {
            s.offer(*job).expect("offer");
        }
        s.drain().expect("drain");
        assert_eq!(s.healthy_clusters(), 4);
        assert!(s.drain_quarantine_events().is_empty());
        assert_eq!(s.drain_finished().len(), 5, "every job still resolves");
    }

    #[test]
    fn shard_quarantine_invalidates_measured_and_cost_memos() {
        // Satellite fix: `ShardSim::quarantine` must drop the measured
        // solo-run cache and the cost gate's memos exactly like
        // `Engine::quarantine`, or a degraded shard admits on stale
        // t̂(M, N) and stale static bounds.
        let offloader =
            mpsoc_offload::Offloader::new(mpsoc_soc::SocConfig::with_clusters(4)).expect("soc");
        let mut s = shard(4, ServiceBackend::measured(offloader, 0xBEEF));
        s.enable_cost(CostGate::new(mpsoc_soc::SocConfig::with_clusters(4)));
        let stream = jobs(&[(0, 1024, 100_000)]);
        s.offer(stream[0]).unwrap();
        s.drain().expect("drain");
        let cache_len = |b: &ServiceBackend| match b {
            ServiceBackend::Measured { offload_cache, .. } => offload_cache.len(),
            _ => unreachable!(),
        };
        assert!(cache_len(&s.backend) > 0, "the run populated the cache");
        s.quarantine(ClusterMask::single(3));
        assert_eq!(cache_len(&s.backend), 0, "measured cache must drop");
        assert_eq!(
            s.cost_gate.as_ref().map(|g| g.effective_clusters()),
            Some(3),
            "cost gate must re-bound to the surviving pool"
        );
        let events = s.drain_quarantine_events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].cluster, 3);
        assert_eq!(events[0].strikes, 0, "manual quarantine carries no strikes");
    }

    #[test]
    fn eviction_unwedges_a_degraded_fifo_queue() {
        // A 2-cluster shard: a narrow filler runs on cluster 0, then a
        // deadline that only 2 clusters can meet queues an m_min=2 job.
        // Quarantining the free cluster makes that queued job
        // unservable — under strict FIFO it would wedge the queue head
        // until drain. `evict_unservable` must surgically remove it
        // (restoring the backlog ledger), leave servable work alone,
        // and `reject_evicted` must resolve it as a typed degraded
        // rejection.
        let table = ModelTable::paper_defaults();
        let t1 = table.get(KernelId::Daxpy).accel.predict(1, 16_384);
        let t2 = table.get(KernelId::Daxpy).accel.predict(2, 16_384);
        let deadline = (t2.ceil() as u64 + t1.floor() as u64) / 2;
        let mut s = shard(2, ServiceBackend::analytic(table));
        let stream = jobs(&[(0, 4096, 1_000_000), (0, 16_384, deadline)]);
        assert!(matches!(
            s.offer(stream[0]).unwrap(),
            ShardDecision::Queued { m_min: 1, .. }
        ));
        assert!(matches!(
            s.offer(stream[1]).unwrap(),
            ShardDecision::Queued { m_min: 2, .. }
        ));
        assert_eq!(s.queue_depth(), 1, "the wide job waits for both clusters");
        let backlog_before = s.backlog_cycles();

        s.quarantine(ClusterMask::single(1));
        let mut evicted = s.evict_unservable();
        assert_eq!(evicted.len(), 1);
        assert_eq!(evicted[0].job.id, 1);
        assert_eq!(evicted[0].m_min, 2);
        assert_eq!(s.queue_depth(), 0);
        assert!(
            s.backlog_cycles() < backlog_before,
            "eviction must return the job's cycles to the ledger"
        );
        assert!(
            s.evict_unservable().is_empty(),
            "eviction is idempotent once the queue fits the pool"
        );

        s.reject_evicted(evicted.pop().expect("evicted job"));
        s.drain().expect("drain");
        let mut records = s.drain_finished();
        records.sort_by_key(|r| r.job.id);
        assert_eq!(records.len(), 2);
        assert!(
            matches!(records[0].outcome, JobOutcome::Offloaded { m: 1, .. }),
            "the narrow tenant on the surviving cluster is untouched"
        );
        match records[1].outcome {
            JobOutcome::Rejected {
                reason: RejectReason::DegradedMachine { required, healthy },
            } => {
                assert_eq!(required, 2);
                assert_eq!(healthy, 1);
            }
            other => panic!("expected a degraded rejection, got {other:?}"),
        }
    }
}
