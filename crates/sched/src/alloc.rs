//! Spatial partitioning: carving disjoint cluster sets for co-resident
//! tenants.
//!
//! The NoC addresses clusters by bitmask ([`ClusterMask`]), so a
//! "partition" is any subset of clusters — contiguity buys nothing.
//! The allocator therefore never fragments: a request for `m` clusters
//! succeeds exactly when `m` clusters are free, and carved partitions
//! are disjoint by construction (each grab removes the bits from the
//! free mask).

use mpsoc_noc::ClusterMask;
use serde::{Deserialize, Serialize};

/// Tracks which clusters are free and hands out disjoint partitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Allocator {
    total: usize,
    free: ClusterMask,
}

impl Allocator {
    /// An allocator over clusters `0..total`, all free.
    ///
    /// # Panics
    ///
    /// Panics when `total` is zero or exceeds the 64-cluster mask width.
    pub fn new(total: usize) -> Self {
        assert!(
            (1..=64).contains(&total),
            "cluster count must be in 1..=64, got {total}"
        );
        Allocator {
            total,
            free: ClusterMask::first(total),
        }
    }

    /// An allocator over clusters `0..total` with `quarantined` removed
    /// from the free set: quarantined clusters are never granted and —
    /// since [`Allocator::release`] only accepts previously carved
    /// masks — can never re-enter the pool.
    ///
    /// A fully quarantined machine yields an allocator that never
    /// grants anything — every job must go to the host or be rejected.
    ///
    /// # Panics
    ///
    /// Panics when `total` is out of range (see [`Allocator::new`]).
    pub fn with_quarantine(total: usize, quarantined: ClusterMask) -> Self {
        let mut a = Allocator::new(total);
        a.free = a.free.without(quarantined);
        a
    }

    /// The machine size.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Clusters currently free.
    pub fn free_count(&self) -> usize {
        self.free.count()
    }

    /// The free set itself.
    pub fn free_mask(&self) -> ClusterMask {
        self.free
    }

    /// Carves a partition of exactly `m` clusters from the free set
    /// (lowest indices first), or `None` if fewer than `m` are free.
    /// The returned mask is disjoint from every outstanding partition.
    pub fn carve(&mut self, m: usize) -> Option<ClusterMask> {
        if m == 0 || m > self.free.count() {
            return None;
        }
        let mut grant = ClusterMask::EMPTY;
        for cluster in self.free.iter().take(m) {
            grant.insert(cluster);
        }
        self.free = ClusterMask::from_bits(self.free.bits() & !grant.bits());
        Some(grant)
    }

    /// Returns a partition to the free set.
    ///
    /// # Panics
    ///
    /// Panics when `mask` overlaps the free set or reaches outside the
    /// machine — both indicate a double-release or a foreign mask, which
    /// would silently corrupt the disjointness invariant.
    pub fn release(&mut self, mask: ClusterMask) {
        assert!(
            mask.intersection(self.free).is_empty(),
            "releasing clusters that are already free"
        );
        assert!(
            mask.highest().map_or(true, |h| h < self.total),
            "releasing clusters outside the machine"
        );
        self.free = self.free.union(mask);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn carve_grants_lowest_free_clusters() {
        let mut a = Allocator::new(8);
        assert_eq!(a.carve(3), Some(ClusterMask::first(3)));
        assert_eq!(a.free_count(), 5);
        let second = a.carve(2).unwrap();
        assert_eq!(second.iter().collect::<Vec<_>>(), vec![3, 4]);
    }

    #[test]
    fn carve_fails_when_short() {
        let mut a = Allocator::new(4);
        assert!(a.carve(5).is_none());
        assert!(a.carve(0).is_none());
        let all = a.carve(4).unwrap();
        assert!(a.carve(1).is_none());
        a.release(all);
        assert_eq!(a.free_count(), 4);
    }

    #[test]
    fn release_restores_holes() {
        let mut a = Allocator::new(8);
        let first = a.carve(2).unwrap();
        let second = a.carve(2).unwrap();
        a.release(first);
        // The freed low clusters are granted again before higher ones.
        let third = a.carve(3).unwrap();
        assert_eq!(third.iter().collect::<Vec<_>>(), vec![0, 1, 4]);
        assert!(third.intersection(second).is_empty());
    }

    #[test]
    #[should_panic(expected = "already free")]
    fn double_release_panics() {
        let mut a = Allocator::new(4);
        let mask = a.carve(2).unwrap();
        a.release(mask);
        a.release(mask);
    }
}
