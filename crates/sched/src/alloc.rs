//! Spatial partitioning: carving disjoint cluster sets for co-resident
//! tenants.
//!
//! The NoC addresses clusters by bitmask ([`ClusterMask`]), so a
//! "partition" is any subset of clusters — contiguity buys nothing.
//! The allocator therefore never fragments: a request for `m` clusters
//! succeeds exactly when `m` clusters are free, and carved partitions
//! are disjoint by construction (each grab removes the bits from the
//! free mask).

use mpsoc_noc::ClusterMask;
use serde::{Deserialize, Serialize};

/// Tracks which clusters are free and hands out disjoint partitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Allocator {
    total: usize,
    free: ClusterMask,
    /// Clusters retired from the pool. A quarantined cluster leaves the
    /// free set immediately and [`Allocator::release`] withholds it from
    /// returning partitions, so quarantine is safe mid-stream even while
    /// the cluster is carved into a running tenant's partition.
    quarantined: ClusterMask,
}

impl Allocator {
    /// An allocator over clusters `0..total`, all free.
    ///
    /// # Panics
    ///
    /// Panics when `total` is zero or exceeds the 64-cluster mask width.
    pub fn new(total: usize) -> Self {
        assert!(
            (1..=64).contains(&total),
            "cluster count must be in 1..=64, got {total}"
        );
        Allocator {
            total,
            free: ClusterMask::first(total),
            quarantined: ClusterMask::EMPTY,
        }
    }

    /// An allocator over clusters `0..total` with `quarantined` removed
    /// from the free set: quarantined clusters are never granted and —
    /// since [`Allocator::release`] only accepts previously carved
    /// masks — can never re-enter the pool.
    ///
    /// A fully quarantined machine yields an allocator that never
    /// grants anything — every job must go to the host or be rejected.
    ///
    /// # Panics
    ///
    /// Panics when `total` is out of range (see [`Allocator::new`]).
    pub fn with_quarantine(total: usize, quarantined: ClusterMask) -> Self {
        let mut a = Allocator::new(total);
        a.quarantine(quarantined);
        a
    }

    /// Retires `mask` from the pool mid-stream. Free clusters leave the
    /// free set now; carved ones are withheld when their partition is
    /// eventually released — either way a quarantined cluster is never
    /// granted again. Idempotent; bits outside the machine are ignored.
    pub fn quarantine(&mut self, mask: ClusterMask) {
        let mask = mask.intersection(ClusterMask::first(self.total));
        self.quarantined = self.quarantined.union(mask);
        self.free = self.free.without(mask);
    }

    /// Clusters retired so far.
    pub fn quarantined(&self) -> ClusterMask {
        self.quarantined
    }

    /// The machine size.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Clusters currently free.
    pub fn free_count(&self) -> usize {
        self.free.count()
    }

    /// The free set itself.
    pub fn free_mask(&self) -> ClusterMask {
        self.free
    }

    /// Carves a partition of exactly `m` clusters from the free set
    /// (lowest indices first), or `None` if fewer than `m` are free.
    /// The returned mask is disjoint from every outstanding partition.
    pub fn carve(&mut self, m: usize) -> Option<ClusterMask> {
        if m == 0 || m > self.free.count() {
            return None;
        }
        let mut grant = ClusterMask::EMPTY;
        for cluster in self.free.iter().take(m) {
            grant.insert(cluster);
        }
        self.free = ClusterMask::from_bits(self.free.bits() & !grant.bits());
        Some(grant)
    }

    /// Returns a partition to the free set.
    ///
    /// # Panics
    ///
    /// Panics when `mask` overlaps the free set or reaches outside the
    /// machine — both indicate a double-release or a foreign mask, which
    /// would silently corrupt the disjointness invariant.
    pub fn release(&mut self, mask: ClusterMask) {
        assert!(
            mask.intersection(self.free).is_empty(),
            "releasing clusters that are already free"
        );
        assert!(
            mask.highest().map_or(true, |h| h < self.total),
            "releasing clusters outside the machine"
        );
        // Clusters quarantined while carved stay out of the pool.
        self.free = self.free.union(mask.without(self.quarantined));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn carve_grants_lowest_free_clusters() {
        let mut a = Allocator::new(8);
        assert_eq!(a.carve(3), Some(ClusterMask::first(3)));
        assert_eq!(a.free_count(), 5);
        let second = a.carve(2).unwrap();
        assert_eq!(second.iter().collect::<Vec<_>>(), vec![3, 4]);
    }

    #[test]
    fn carve_fails_when_short() {
        let mut a = Allocator::new(4);
        assert!(a.carve(5).is_none());
        assert!(a.carve(0).is_none());
        let all = a.carve(4).unwrap();
        assert!(a.carve(1).is_none());
        a.release(all);
        assert_eq!(a.free_count(), 4);
    }

    #[test]
    fn release_restores_holes() {
        let mut a = Allocator::new(8);
        let first = a.carve(2).unwrap();
        let second = a.carve(2).unwrap();
        a.release(first);
        // The freed low clusters are granted again before higher ones.
        let third = a.carve(3).unwrap();
        assert_eq!(third.iter().collect::<Vec<_>>(), vec![0, 1, 4]);
        assert!(third.intersection(second).is_empty());
    }

    #[test]
    fn quarantine_removes_free_clusters_immediately() {
        let mut a = Allocator::new(4);
        a.quarantine(ClusterMask::first(2));
        assert_eq!(a.free_count(), 2);
        let grant = a.carve(2).unwrap();
        assert_eq!(grant.iter().collect::<Vec<_>>(), vec![2, 3]);
        assert!(a.carve(1).is_none());
    }

    #[test]
    fn quarantined_busy_clusters_never_return_to_the_pool() {
        let mut a = Allocator::new(4);
        let grant = a.carve(2).unwrap(); // clusters 0,1 busy
        let mut bad = ClusterMask::EMPTY;
        bad.insert(0);
        a.quarantine(bad);
        // Release returns only the healthy cluster; the quarantined one
        // is withheld and can never be granted again.
        a.release(grant);
        assert_eq!(a.free_count(), 3);
        let next = a.carve(3).unwrap();
        assert!(!next.iter().any(|c| c == 0));
    }

    #[test]
    fn quarantine_is_idempotent_and_clips_to_the_machine() {
        let mut a = Allocator::new(4);
        let mut mask = ClusterMask::first(1);
        mask.insert(63); // outside the machine: ignored
        a.quarantine(mask);
        a.quarantine(mask);
        assert_eq!(a.quarantined(), ClusterMask::first(1));
        assert_eq!(a.free_count(), 3);
    }

    #[test]
    #[should_panic(expected = "already free")]
    fn double_release_panics() {
        let mut a = Allocator::new(4);
        let mask = a.carve(2).unwrap();
        a.release(mask);
        a.release(mask);
    }
}
