//! Static cost verification at admission: jobs whose deadline is below
//! even the *static best-case* runtime are rejected before Eq. 3.
//!
//! The learned Eq. 1 model can drift (faults, contention, refits); the
//! static analyzer ([`mpsoc_lint::bound_offload`]) cannot — its bounds
//! are derived from the machine description alone. The gate computes
//! the smallest statically-possible runtime for a `(kernel, n)` pair
//! across every cluster count, every dispatch/sync strategy, and the
//! host fallback path, and rejects jobs whose deadline undercuts it
//! with [`RejectReason::StaticInfeasible`]. It also exposes the static
//! `[best, worst]` envelope at a specific cluster count so callers can
//! audit the learned model's predictions against sound bounds
//! (`serve.cost.*` counters in the serving front-end).
//!
//! Verdicts are memoized per `(kernel, n)` like [`LintGate`]'s, so job
//! streams over the usual handful of kernel/size pairs pay for the
//! analysis once per pair.
//!
//! [`LintGate`]: crate::LintGate
//! [`RejectReason::StaticInfeasible`]: crate::RejectReason::StaticInfeasible

use std::collections::HashMap;

use mpsoc_lint::{bound_host_run, bound_offload, ContentionEnvelope, CycleBounds};
use mpsoc_offload::{OffloadStrategy, RuntimeCosts};
use mpsoc_soc::SocConfig;

use crate::job::{Job, KernelId};

/// A memoizing static-cost check applied to every arriving job.
#[derive(Debug, Clone)]
pub struct CostGate {
    config: SocConfig,
    costs: RuntimeCosts,
    /// Cluster counts the analysis may assume available. Starts at the
    /// configured machine size; quarantine shrinks it via
    /// [`CostGate::restrict_clusters`].
    effective_clusters: usize,
    /// Smallest static best-case total per `(kernel, n)`; `None` when
    /// the program is unboundable (the gate then stays open — an
    /// incomplete analysis is not evidence of infeasibility).
    min_best: HashMap<(KernelId, u64), Option<u64>>,
    /// Static `[best, worst]` total at `(kernel, n, m)`, maximized over
    /// strategies on the worst side and minimized on the best side.
    envelopes: HashMap<(KernelId, u64, usize), Option<CycleBounds>>,
}

impl CostGate {
    /// A gate for the machine described by `config` with the default
    /// runtime-constant calibration.
    pub fn new(config: SocConfig) -> Self {
        let effective_clusters = config.clusters;
        CostGate {
            config,
            costs: RuntimeCosts::default(),
            effective_clusters,
            min_best: HashMap::new(),
            envelopes: HashMap::new(),
        }
    }

    /// Re-bounds the analysis to `healthy` surviving clusters and drops
    /// every memoized verdict. Both memo families were computed against
    /// the previous machine size: a shrunken pool raises the true
    /// minimum best case (the widest partitions are gone), so stale
    /// entries would keep admitting jobs on bounds the degraded machine
    /// can no longer realize. Cluster counts beyond `healthy` stop
    /// yielding envelopes — the machine cannot grant them.
    pub fn restrict_clusters(&mut self, healthy: usize) {
        let healthy = healthy.min(self.config.clusters);
        if healthy == self.effective_clusters {
            return;
        }
        self.effective_clusters = healthy;
        self.min_best.clear();
        self.envelopes.clear();
    }

    /// Cluster counts the gate currently reasons over.
    pub fn effective_clusters(&self) -> usize {
        self.effective_clusters
    }

    /// A gate for the calibrated Manticore-class machine.
    pub fn manticore() -> Self {
        CostGate::new(SocConfig::manticore())
    }

    /// Checks one job: `Some(best)` when the deadline is statically
    /// infeasible (reject with that bound), `None` when the gate passes.
    pub fn check(&mut self, job: &Job) -> Option<u64> {
        let best = self.min_best(job.kernel, job.n)?;
        (job.deadline < best).then_some(best)
    }

    /// The smallest statically-possible runtime for `(kernel, n)` on
    /// this machine — any cluster count, any strategy, or the host.
    /// `None` when the generated programs cannot be bounded.
    pub fn min_best(&mut self, kernel: KernelId, n: u64) -> Option<u64> {
        if let Some(v) = self.min_best.get(&(kernel, n)) {
            return *v;
        }
        let v = self.compute_min_best(kernel, n);
        self.min_best.insert((kernel, n), v);
        v
    }

    /// The static total-runtime envelope at exactly `m` clusters:
    /// best minimized and worst maximized over the four strategies.
    /// Used to audit learned-model predictions: a prediction outside
    /// this interval is provably mis-calibrated for solo execution.
    pub fn envelope(&mut self, kernel: KernelId, n: u64, m: usize) -> Option<CycleBounds> {
        if let Some(v) = self.envelopes.get(&(kernel, n, m)) {
            return *v;
        }
        let v = self.compute_envelope(kernel, n, m);
        self.envelopes.insert((kernel, n, m), v);
        v
    }

    fn compute_min_best(&self, kernel: KernelId, n: u64) -> Option<u64> {
        let k = kernel.instantiate();
        let solo = ContentionEnvelope::default();
        let mut best = bound_host_run(k.as_ref(), n).ok()?.cycles.best;
        for m in 1..=self.effective_clusters {
            for strategy in OffloadStrategy::all() {
                let bounds =
                    bound_offload(k.as_ref(), n, m, strategy, &self.config, &self.costs, &solo)
                        .ok()?;
                best = best.min(bounds.total.best);
            }
        }
        Some(best)
    }

    fn compute_envelope(&self, kernel: KernelId, n: u64, m: usize) -> Option<CycleBounds> {
        if m == 0 || m > self.effective_clusters {
            return None;
        }
        let k = kernel.instantiate();
        let solo = ContentionEnvelope::default();
        let mut envelope: Option<CycleBounds> = None;
        for strategy in OffloadStrategy::all() {
            let bounds =
                bound_offload(k.as_ref(), n, m, strategy, &self.config, &self.costs, &solo).ok()?;
            envelope = Some(match envelope {
                None => bounds.total,
                Some(e) => CycleBounds {
                    best: e.best.min(bounds.total.best),
                    worst: e.worst.max(bounds.total.worst),
                },
            });
        }
        envelope
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(kernel: KernelId, n: u64, deadline: u64) -> Job {
        Job {
            id: 0,
            kernel,
            n,
            arrival: 0,
            deadline,
        }
    }

    #[test]
    fn generous_deadlines_pass_every_zoo_kernel() {
        let mut gate = CostGate::manticore();
        for kernel in KernelId::ALL {
            for n in [1, 64, 1024] {
                assert_eq!(
                    gate.check(&job(kernel, n, 10_000_000)),
                    None,
                    "{kernel} n={n} blocked with a generous deadline"
                );
            }
        }
    }

    #[test]
    fn impossible_deadlines_are_rejected_with_the_bound() {
        let mut gate = CostGate::manticore();
        // One cycle is below any offload's dispatch latency and below
        // any host run of 4096 elements.
        let best = gate
            .check(&job(KernelId::Daxpy, 4_096, 1))
            .expect("statically infeasible");
        assert!(best > 1, "carried bound {best} explains the rejection");
        // The carried bound is exactly the memoized minimum best case.
        assert_eq!(gate.min_best(KernelId::Daxpy, 4_096), Some(best));
        // A deadline at the bound itself is admissible.
        assert_eq!(gate.check(&job(KernelId::Daxpy, 4_096, best)), None);
    }

    #[test]
    fn restricting_clusters_drops_memos_and_raises_the_bound() {
        let mut gate = CostGate::manticore();
        let full = gate.min_best(KernelId::Daxpy, 65_536).expect("boundable");
        assert!(gate.envelope(KernelId::Daxpy, 65_536, 8).is_some());
        gate.restrict_clusters(1);
        assert_eq!(gate.effective_clusters(), 1);
        // Envelopes beyond the surviving pool are no longer claimable.
        assert_eq!(gate.envelope(KernelId::Daxpy, 65_536, 8), None);
        // The recomputed minimum can only get worse on a smaller machine.
        let degraded = gate.min_best(KernelId::Daxpy, 65_536).expect("boundable");
        assert!(
            degraded >= full,
            "degraded bound {degraded} must not undercut the full machine's {full}"
        );
        // Restricting to the same size is a no-op (memos survive).
        gate.restrict_clusters(1);
        assert_eq!(gate.min_best(KernelId::Daxpy, 65_536), Some(degraded));
    }

    #[test]
    fn envelope_is_well_formed_and_brackets_min_best() {
        let mut gate = CostGate::manticore();
        let min_best = gate.min_best(KernelId::Dot, 2_048).expect("boundable");
        for m in [1usize, 4, 32] {
            let env = gate.envelope(KernelId::Dot, 2_048, m).expect("boundable");
            assert!(env.is_well_formed());
            assert!(env.best >= min_best, "per-m best below the global minimum");
        }
        assert_eq!(gate.envelope(KernelId::Dot, 2_048, 0), None);
        assert_eq!(gate.envelope(KernelId::Dot, 2_048, 999), None);
    }
}
