//! Per-job records and aggregate scheduling metrics, all
//! serde-serializable for JSON artifacts.

use serde::{Deserialize, Serialize};

use crate::admission::RejectReason;
use crate::job::Job;

/// What happened to one job.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum JobOutcome {
    /// Ran on a carved cluster partition.
    Offloaded {
        /// Cycle the partition started executing.
        start: u64,
        /// Cycle the offload completed.
        finish: u64,
        /// Partition size (clusters).
        m: usize,
    },
    /// Ran on the host core.
    Host {
        /// Cycle the host began the job.
        start: u64,
        /// Cycle the host finished.
        finish: u64,
    },
    /// Turned away at admission.
    Rejected {
        /// Why.
        reason: RejectReason,
    },
}

/// One job plus its fate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobRecord {
    /// The job as submitted.
    pub job: Job,
    /// What happened to it.
    pub outcome: JobOutcome,
    /// Shared-resource interference charged to this job (NoC stall +
    /// HBM queueing + AMO wait cycles) by the co-simulated backend.
    /// Zero under the measured and analytic backends, whose solo-run
    /// service times cannot observe cross-tenant contention.
    pub contention_cycles: u64,
    /// Re-dispatch attempts this job needed beyond the first (the
    /// virtual-time engine dispatches exactly once, so this is nonzero
    /// only for records produced by a resilient execution layer).
    pub retries: u32,
    /// Faults injected into this job's offload, as reported by the
    /// co-simulated SoC's injector. Zero under the measured and
    /// analytic backends (no fault plan is in the loop) and on
    /// fault-free machines.
    pub faults_observed: u64,
}

impl JobRecord {
    /// Completion latency (finish − arrival); `None` for rejected jobs.
    pub fn latency(&self) -> Option<u64> {
        match self.outcome {
            JobOutcome::Offloaded { finish, .. } | JobOutcome::Host { finish, .. } => {
                Some(finish - self.job.arrival)
            }
            JobOutcome::Rejected { .. } => None,
        }
    }

    /// Whether a *completed* job blew its deadline (rejections are
    /// counted separately, not as misses).
    pub fn missed_deadline(&self) -> bool {
        match self.outcome {
            JobOutcome::Offloaded { finish, .. } | JobOutcome::Host { finish, .. } => {
                finish > self.job.absolute_deadline()
            }
            JobOutcome::Rejected { .. } => false,
        }
    }
}

/// Aggregate metrics over one simulated run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Metrics {
    /// Jobs submitted.
    pub jobs: usize,
    /// Jobs that ran on cluster partitions.
    pub offloaded: usize,
    /// Jobs that ran on the host core.
    pub host_runs: usize,
    /// Jobs rejected at admission.
    pub rejected: usize,
    /// Completed jobs that blew their deadline.
    pub deadline_misses: usize,
    /// `deadline_misses / (offloaded + host_runs)`; 0 when nothing ran.
    pub miss_rate: f64,
    /// `rejected / jobs`.
    pub rejection_rate: f64,
    /// Mean completion latency (cycles) over completed jobs.
    pub mean_latency: f64,
    /// Median completion latency.
    pub p50_latency: u64,
    /// 95th-percentile completion latency.
    pub p95_latency: u64,
    /// 99th-percentile completion latency.
    pub p99_latency: u64,
    /// Last completion cycle (0 when nothing ran).
    pub makespan: u64,
    /// Completed jobs per million cycles.
    pub throughput_per_mcycle: f64,
    /// Busy cluster-cycles of offloads over `clusters × makespan`.
    pub cluster_utilization: f64,
}

impl Metrics {
    /// Computes aggregates from per-job records on a machine of
    /// `clusters` clusters.
    pub fn from_records(records: &[JobRecord], clusters: usize) -> Self {
        let jobs = records.len();
        let mut offloaded = 0;
        let mut host_runs = 0;
        let mut rejected = 0;
        let mut deadline_misses = 0;
        let mut busy_cluster_cycles = 0u64;
        let mut makespan = 0u64;
        let mut latencies: Vec<u64> = Vec::with_capacity(jobs);
        for r in records {
            match r.outcome {
                JobOutcome::Offloaded { start, finish, m } => {
                    offloaded += 1;
                    busy_cluster_cycles += (finish - start) * m as u64;
                    makespan = makespan.max(finish);
                }
                JobOutcome::Host { finish, .. } => {
                    host_runs += 1;
                    makespan = makespan.max(finish);
                }
                JobOutcome::Rejected { .. } => rejected += 1,
            }
            if r.missed_deadline() {
                deadline_misses += 1;
            }
            if let Some(l) = r.latency() {
                latencies.push(l);
            }
        }
        latencies.sort_unstable();
        let completed = latencies.len();
        let mean_latency = if completed == 0 {
            0.0
        } else {
            latencies.iter().sum::<u64>() as f64 / completed as f64
        };
        Metrics {
            jobs,
            offloaded,
            host_runs,
            rejected,
            deadline_misses,
            miss_rate: if completed == 0 {
                0.0
            } else {
                deadline_misses as f64 / completed as f64
            },
            rejection_rate: if jobs == 0 {
                0.0
            } else {
                rejected as f64 / jobs as f64
            },
            mean_latency,
            p50_latency: percentile(&latencies, 50),
            p95_latency: percentile(&latencies, 95),
            p99_latency: percentile(&latencies, 99),
            makespan,
            throughput_per_mcycle: if makespan == 0 {
                0.0
            } else {
                completed as f64 / (makespan as f64 / 1e6)
            },
            cluster_utilization: if makespan == 0 {
                0.0
            } else {
                busy_cluster_cycles as f64 / (clusters as u64 * makespan) as f64
            },
        }
    }
}

/// Nearest-rank percentile of an ascending-sorted slice; 0 when empty.
fn percentile(sorted: &[u64], pct: usize) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (pct * sorted.len()).div_ceil(100).max(1) - 1;
    sorted[rank.min(sorted.len() - 1)]
}

/// Everything one `(policy, workload, machine)` run produced.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Policy name.
    pub policy: String,
    /// Machine size (clusters).
    pub clusters: usize,
    /// Aggregates.
    pub metrics: Metrics,
    /// Per-job fates, in submission order.
    pub records: Vec<JobRecord>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::KernelId;

    fn record(arrival: u64, deadline: u64, outcome: JobOutcome) -> JobRecord {
        JobRecord {
            job: Job {
                id: 0,
                kernel: KernelId::Daxpy,
                n: 1024,
                arrival,
                deadline,
            },
            outcome,
            contention_cycles: 0,
            retries: 0,
            faults_observed: 0,
        }
    }

    #[test]
    fn aggregates_count_misses_and_utilization() {
        let records = vec![
            record(
                0,
                100,
                JobOutcome::Offloaded {
                    start: 0,
                    finish: 90,
                    m: 2,
                },
            ),
            record(
                0,
                100,
                JobOutcome::Offloaded {
                    start: 90,
                    finish: 200,
                    m: 4,
                },
            ),
            record(
                0,
                1000,
                JobOutcome::Host {
                    start: 0,
                    finish: 50,
                },
            ),
            record(
                0,
                10,
                JobOutcome::Rejected {
                    reason: crate::admission::RejectReason::Infeasible,
                },
            ),
        ];
        let m = Metrics::from_records(&records, 8);
        assert_eq!(m.jobs, 4);
        assert_eq!(m.offloaded, 2);
        assert_eq!(m.host_runs, 1);
        assert_eq!(m.rejected, 1);
        assert_eq!(m.deadline_misses, 1);
        assert_eq!(m.makespan, 200);
        // Busy: 90·2 + 110·4 = 620 cluster-cycles over 8·200.
        assert!((m.cluster_utilization - 620.0 / 1600.0).abs() < 1e-12);
        assert_eq!(m.p50_latency, 90);
        assert_eq!(m.p99_latency, 200);
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 50), 50);
        assert_eq!(percentile(&v, 95), 95);
        assert_eq!(percentile(&v, 99), 99);
        assert_eq!(percentile(&[7], 99), 7);
        assert_eq!(percentile(&[], 50), 0);
    }

    #[test]
    fn empty_runs_produce_zeroes() {
        let m = Metrics::from_records(&[], 8);
        assert_eq!(m.miss_rate, 0.0);
        assert_eq!(m.makespan, 0);
        assert_eq!(m.cluster_utilization, 0.0);
    }
}
