//! Seeded synthetic job streams: the tenant side of the scheduling
//! problem.
//!
//! A [`Workload`] describes *what* arrives (kernel mix, problem sizes,
//! deadline slack) and *when* (the [`ArrivalPattern`]); `generate`
//! expands it into a concrete, deterministic job stream. Deadlines are
//! drawn relative to each job's predicted service time on a reference
//! partition size, so a stream stays meaningful across machine sizes.

use mpsoc_sim::rng::SplitMix64;

use crate::calibrate::ModelTable;
use crate::job::{Job, KernelId};

/// When jobs arrive.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalPattern {
    /// Open loop: exponential interarrival times with the given mean
    /// (cycles). Memoryless — the classic M/G/c offered-load model.
    Poisson {
        /// Mean interarrival gap in cycles.
        mean_interarrival: f64,
    },
    /// Closed loop: a fixed population of clients, each submitting its
    /// next job one think time after (an estimate of) its previous
    /// job's completion. The estimate is the model-predicted service
    /// time on the reference partition — the generator stays decoupled
    /// from the scheduler, so this is an open-loop approximation of a
    /// closed system.
    ClosedLoop {
        /// Number of concurrent clients.
        population: usize,
        /// Mean think time between a client's jobs (cycles).
        mean_think: f64,
    },
    /// Trace-style bursts: batches of back-to-back submissions at
    /// exponentially spaced epochs, e.g. a tenant unrolling a loop of
    /// offloads.
    Bursty {
        /// Jobs per burst.
        burst: usize,
        /// Mean gap between burst epochs (cycles).
        mean_gap: f64,
    },
}

/// A synthetic workload description; [`Workload::generate`] expands it
/// into a job stream.
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    /// Number of jobs to emit.
    pub jobs: usize,
    /// RNG seed: equal seeds (and equal specs) give identical streams.
    pub seed: u64,
    /// Kernel mix as `(kernel, weight)` pairs; weights need not sum to 1.
    pub mix: Vec<(KernelId, f64)>,
    /// Candidate problem sizes, drawn uniformly.
    pub sizes: Vec<u64>,
    /// Deadline slack range: each job's relative deadline is its
    /// predicted service time on [`Workload::reference_clusters`]
    /// clusters times a uniform draw from this range.
    pub slack: (f64, f64),
    /// Partition size used for the deadline reference prediction.
    pub reference_clusters: u64,
    /// The arrival process.
    pub arrivals: ArrivalPattern,
}

impl Workload {
    /// A balanced default: all seven kernels equally weighted, sizes
    /// from 256 to 4096, deadlines 1.5–6× the predicted service time on
    /// a quarter of a 32-cluster machine.
    pub fn balanced(jobs: usize, seed: u64, arrivals: ArrivalPattern) -> Self {
        Workload {
            jobs,
            seed,
            mix: KernelId::ALL.iter().map(|&k| (k, 1.0)).collect(),
            sizes: vec![256, 512, 1024, 2048, 4096],
            slack: (1.5, 6.0),
            reference_clusters: 8,
            arrivals,
        }
    }

    /// Expected cluster-cycle demand of one job: the mean over the mix
    /// and sizes of `M_ref · t̂(M_ref, N)`. Used to convert a target
    /// offered load into an interarrival gap.
    pub fn mean_demand(&self, table: &ModelTable) -> f64 {
        let weight_sum: f64 = self.mix.iter().map(|(_, w)| w).sum();
        let mut demand = 0.0;
        for &(kernel, weight) in &self.mix {
            let model = &table.get(kernel).accel;
            let per_kernel: f64 = self
                .sizes
                .iter()
                .map(|&n| {
                    self.reference_clusters as f64 * model.predict(self.reference_clusters, n)
                })
                .sum::<f64>()
                / self.sizes.len() as f64;
            demand += weight / weight_sum * per_kernel;
        }
        demand
    }

    /// The mean interarrival gap that offers `rho` load to a machine of
    /// `clusters` clusters: `gap = demand / (rho · clusters)`. `rho = 1`
    /// saturates the machine on average; `rho > 1` overloads it.
    pub fn interarrival_for_load(&self, table: &ModelTable, clusters: usize, rho: f64) -> f64 {
        assert!(rho > 0.0, "offered load must be positive");
        self.mean_demand(table) / (rho * clusters as f64)
    }

    /// Expands the description into a concrete job stream, sorted by
    /// arrival time with ids in arrival order. Deterministic in
    /// (`self`, `table`).
    pub fn generate(&self, table: &ModelTable) -> Vec<Job> {
        assert!(!self.mix.is_empty(), "workload needs at least one kernel");
        assert!(!self.sizes.is_empty(), "workload needs at least one size");
        let mut rng = SplitMix64::new(self.seed);
        let draw = |rng: &mut SplitMix64| {
            let kernel = weighted_choice(&self.mix, rng);
            let n = self.sizes[rng.next_below(self.sizes.len() as u64) as usize];
            let service = table.get(kernel).accel.predict(self.reference_clusters, n);
            let slack = rng.next_range_f64(self.slack.0, self.slack.1);
            let deadline = (service * slack).ceil() as u64;
            (kernel, n, deadline, service)
        };

        let mut jobs: Vec<Job> = Vec::with_capacity(self.jobs);
        match self.arrivals {
            ArrivalPattern::Poisson { mean_interarrival } => {
                let mut t = 0.0f64;
                for _ in 0..self.jobs {
                    t += exponential(&mut rng, mean_interarrival);
                    let (kernel, n, deadline, _) = draw(&mut rng);
                    jobs.push(Job {
                        id: 0,
                        kernel,
                        n,
                        arrival: t as u64,
                        deadline,
                    });
                }
            }
            ArrivalPattern::ClosedLoop {
                population,
                mean_think,
            } => {
                assert!(population > 0, "closed loop needs at least one client");
                // Each client's next submission follows its previous
                // job's estimated completion plus a think time.
                let mut next_free = vec![0.0f64; population];
                for i in 0..self.jobs {
                    let client = i % population;
                    let t = next_free[client];
                    let (kernel, n, deadline, service) = draw(&mut rng);
                    jobs.push(Job {
                        id: 0,
                        kernel,
                        n,
                        arrival: t as u64,
                        deadline,
                    });
                    next_free[client] = t + service + exponential(&mut rng, mean_think);
                }
            }
            ArrivalPattern::Bursty { burst, mean_gap } => {
                assert!(burst > 0, "bursts need at least one job");
                let mut t = 0.0f64;
                let mut emitted = 0;
                while emitted < self.jobs {
                    t += exponential(&mut rng, mean_gap);
                    for _ in 0..burst.min(self.jobs - emitted) {
                        let (kernel, n, deadline, _) = draw(&mut rng);
                        jobs.push(Job {
                            id: 0,
                            kernel,
                            n,
                            arrival: t as u64,
                            deadline,
                        });
                        emitted += 1;
                    }
                }
            }
        }

        // Arrival order with ids assigned after sorting, so every
        // pattern yields the same (arrival, id) invariant. Ties keep
        // emission order (stable sort).
        jobs.sort_by_key(|j| j.arrival);
        for (i, job) in jobs.iter_mut().enumerate() {
            job.id = i as u64;
        }
        jobs
    }
}

/// Exponential draw with the given mean (inverse-CDF of `U(0,1)`).
fn exponential(rng: &mut SplitMix64, mean: f64) -> f64 {
    let u = rng.next_f64();
    // `1 - u` is in (0, 1]: ln stays finite.
    -mean * (1.0 - u).ln()
}

/// Weighted draw from the kernel mix.
fn weighted_choice(mix: &[(KernelId, f64)], rng: &mut SplitMix64) -> KernelId {
    let total: f64 = mix.iter().map(|(_, w)| w).sum();
    let mut pick = rng.next_f64() * total;
    for &(kernel, weight) in mix {
        pick -= weight;
        if pick <= 0.0 {
            return kernel;
        }
    }
    mix.last().expect("non-empty mix").0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibrate::ModelTable;

    fn table() -> ModelTable {
        ModelTable::paper_defaults()
    }

    #[test]
    fn generation_is_deterministic() {
        let w = Workload::balanced(
            50,
            7,
            ArrivalPattern::Poisson {
                mean_interarrival: 500.0,
            },
        );
        assert_eq!(w.generate(&table()), w.generate(&table()));
    }

    #[test]
    fn seeds_change_the_stream() {
        let mk = |seed| {
            Workload::balanced(
                50,
                seed,
                ArrivalPattern::Poisson {
                    mean_interarrival: 500.0,
                },
            )
            .generate(&table())
        };
        assert_ne!(mk(1), mk(2));
    }

    #[test]
    fn streams_are_sorted_with_sequential_ids() {
        for arrivals in [
            ArrivalPattern::Poisson {
                mean_interarrival: 300.0,
            },
            ArrivalPattern::ClosedLoop {
                population: 4,
                mean_think: 200.0,
            },
            ArrivalPattern::Bursty {
                burst: 5,
                mean_gap: 2000.0,
            },
        ] {
            let jobs = Workload::balanced(40, 11, arrivals).generate(&table());
            assert_eq!(jobs.len(), 40);
            assert!(jobs.windows(2).all(|w| w[0].arrival <= w[1].arrival));
            assert!(jobs.iter().enumerate().all(|(i, j)| j.id == i as u64));
            assert!(jobs.iter().all(|j| j.deadline > 0));
        }
    }

    #[test]
    fn bursts_share_arrival_times() {
        let jobs = Workload::balanced(
            30,
            3,
            ArrivalPattern::Bursty {
                burst: 10,
                mean_gap: 50_000.0,
            },
        )
        .generate(&table());
        let distinct: std::collections::BTreeSet<u64> = jobs.iter().map(|j| j.arrival).collect();
        assert_eq!(distinct.len(), 3);
    }

    #[test]
    fn load_conversion_is_monotonic() {
        let w = Workload::balanced(
            10,
            1,
            ArrivalPattern::Poisson {
                mean_interarrival: 1.0,
            },
        );
        let t = table();
        let slow = w.interarrival_for_load(&t, 32, 0.5);
        let fast = w.interarrival_for_load(&t, 32, 2.0);
        assert!(slow > fast);
        assert!(w.mean_demand(&t) > 0.0);
    }
}
