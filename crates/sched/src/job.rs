//! Jobs: the unit of multi-tenant offload work.

use mpsoc_kernels::{Axpby, Daxpy, Dot, Kernel, Memset, Scale, Sum, VecAdd};
use serde::{Deserialize, Serialize};

/// The kernels a tenant may submit: the vector subset of the kernel zoo
/// (one `x` word per element, so every job is fully described by its
/// problem size `N`).
///
/// Matrix (`Gemv`) and stencil kernels are excluded — their operand
/// geometry needs extra parameters and the scheduling problem is
/// unchanged by them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum KernelId {
    /// `y ← a·x + y` (the paper's kernel).
    Daxpy,
    /// `y ← a·x + b·y`.
    Axpby,
    /// `y ← a·x`.
    Scale,
    /// `y ← x + y`.
    VecAdd,
    /// `y ← v`.
    Memset,
    /// `Σ x·y` (reduction).
    Dot,
    /// `Σ x` (reduction).
    Sum,
}

impl KernelId {
    /// Every schedulable kernel, in a fixed order.
    pub const ALL: [KernelId; 7] = [
        KernelId::Daxpy,
        KernelId::Axpby,
        KernelId::Scale,
        KernelId::VecAdd,
        KernelId::Memset,
        KernelId::Dot,
        KernelId::Sum,
    ];

    /// Short lowercase name (stable; used in reports and tables).
    pub fn name(self) -> &'static str {
        match self {
            KernelId::Daxpy => "daxpy",
            KernelId::Axpby => "axpby",
            KernelId::Scale => "scale",
            KernelId::VecAdd => "vecadd",
            KernelId::Memset => "memset",
            KernelId::Dot => "dot",
            KernelId::Sum => "sum",
        }
    }

    /// Instantiates the kernel with fixed, representative scalar
    /// arguments (the argument values do not affect timing).
    pub fn instantiate(self) -> Box<dyn Kernel> {
        match self {
            KernelId::Daxpy => Box::new(Daxpy::new(2.0)),
            KernelId::Axpby => Box::new(Axpby::new(2.0, 0.5)),
            KernelId::Scale => Box::new(Scale::new(1.5)),
            KernelId::VecAdd => Box::new(VecAdd::new()),
            KernelId::Memset => Box::new(Memset::new(0.0)),
            KernelId::Dot => Box::new(Dot::new()),
            KernelId::Sum => Box::new(Sum::new()),
        }
    }
}

impl std::fmt::Display for KernelId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One offload request submitted by a tenant.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Job {
    /// Submission-order identifier (unique within a workload).
    pub id: u64,
    /// The kernel to run.
    pub kernel: KernelId,
    /// Problem size in elements.
    pub n: u64,
    /// Arrival time in cycles.
    pub arrival: u64,
    /// Relative deadline: the job should finish within this many cycles
    /// of its arrival.
    pub deadline: u64,
}

impl Job {
    /// The absolute cycle by which the job should complete.
    pub fn absolute_deadline(&self) -> u64 {
        self.arrival.saturating_add(self.deadline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_ids_instantiate_and_name() {
        for id in KernelId::ALL {
            let k = id.instantiate();
            // One x word per element: the job is described by N alone.
            assert_eq!(k.x_words_per_elem(), 1, "{id}");
            assert!(!id.name().is_empty());
        }
    }

    #[test]
    fn absolute_deadline_saturates() {
        let job = Job {
            id: 0,
            kernel: KernelId::Daxpy,
            n: 1024,
            arrival: u64::MAX - 10,
            deadline: 100,
        };
        assert_eq!(job.absolute_deadline(), u64::MAX);
    }
}
