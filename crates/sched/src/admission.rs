//! Model-guided admission control: Eq. 3 applied per arriving job.
//!
//! For each arrival the controller predicts the offload runtime
//! `t̂(M, N)` from the job's fitted kernel model and solves the paper's
//! Eq. 3 for the minimum partition `M_min` that meets the deadline. Jobs
//! the accelerator cannot serve in time fall back to the host when the
//! host cost line still fits the deadline (the paper's §I offload-or-not
//! decision), and are rejected otherwise.

use mpsoc_offload::decision::{decide, should_offload, Decision};
use serde::{Deserialize, Serialize};

use crate::calibrate::ModelTable;
use crate::job::Job;

/// Why a job was turned away.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RejectReason {
    /// No cluster count meets the deadline (Eq. 3 has no solution) and
    /// the host is too slow as well.
    Infeasible,
    /// Eq. 3 has a solution but it exceeds the machine, and the host is
    /// too slow as well. Carries the required cluster count.
    NotEnoughClusters {
        /// The `M_min` the deadline would need.
        required: u64,
    },
    /// The job's generated program failed static verification
    /// ([`mpsoc_lint`]): it would fault or corrupt TCDM if dispatched.
    ProgramLint {
        /// Number of lint errors in the failing report.
        errors: u32,
    },
    /// The full machine could serve the job, but cluster quarantine has
    /// shrunk the pool below the Eq. 3 minimum partition (and the host
    /// is too slow as well).
    DegradedMachine {
        /// The `M_min` the deadline would need.
        required: u64,
        /// Healthy (non-quarantined) clusters remaining.
        healthy: u64,
    },
    /// The deadline is below the *static best-case* runtime bound
    /// ([`mpsoc_lint::bound_offload`]) at every cluster count and
    /// strategy, and below the host path's static best case: no
    /// schedule can meet it regardless of what the learned Eq. 1 model
    /// predicts. Checked before Eq. 3 when a cost gate is enabled.
    StaticInfeasible {
        /// The smallest statically-possible runtime on this machine.
        best: u64,
    },
    /// The job is feasible but the shard's admitted-but-unstarted queue
    /// is at its configured cap — serving-side backpressure, distinct
    /// from the model-side reasons above (a balancer may retry it on
    /// another shard).
    QueueFull {
        /// Jobs already waiting when the cap fired.
        depth: u64,
    },
}

impl RejectReason {
    /// Stable snake_case key for per-reason counters and metric names.
    /// Payload fields (required clusters, queue depth, …) are dropped:
    /// counters aggregate by *kind*, not by instance.
    pub fn counter_key(&self) -> &'static str {
        match self {
            RejectReason::Infeasible => "infeasible",
            RejectReason::NotEnoughClusters { .. } => "not_enough_clusters",
            RejectReason::ProgramLint { .. } => "program_lint",
            RejectReason::DegradedMachine { .. } => "degraded_machine",
            RejectReason::StaticInfeasible { .. } => "static_infeasible",
            RejectReason::QueueFull { .. } => "queue_full",
        }
    }
}

/// The controller's verdict on one arriving job.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AdmissionDecision {
    /// Offload with at least `m_min` clusters (Eq. 3).
    Offload {
        /// Minimum partition meeting the deadline, assuming an
        /// immediate start.
        m_min: u64,
        /// Predicted runtime at `m_min` (cycles).
        predicted: f64,
    },
    /// Run on the host core: either the accelerator cannot meet the
    /// deadline but the host can, or the job is below break-even and
    /// the host is simply faster.
    Host {
        /// Predicted host runtime (cycles).
        predicted: f64,
    },
    /// Turn the job away.
    Reject {
        /// Why.
        reason: RejectReason,
    },
}

/// Admission control over a machine of a fixed cluster count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdmissionController {
    table: ModelTable,
    clusters: u64,
}

impl AdmissionController {
    /// A controller for a machine with `clusters` clusters.
    pub fn new(table: ModelTable, clusters: u64) -> Self {
        assert!(clusters > 0, "machine needs at least one cluster");
        AdmissionController { table, clusters }
    }

    /// The per-kernel model table in use.
    pub fn table(&self) -> &ModelTable {
        &self.table
    }

    /// The machine size admission reasons against.
    pub fn clusters(&self) -> u64 {
        self.clusters
    }

    /// Decides one job's fate, assuming it could start immediately
    /// (queueing delay is the scheduler's problem; admission bounds
    /// feasibility, not timeliness).
    pub fn admit(&self, job: &Job) -> AdmissionDecision {
        self.admit_with_clusters(job, self.clusters)
    }

    /// Admission against the `healthy` surviving pool of a (possibly
    /// quarantine-degraded) machine. When the *full* machine could have
    /// served the job but the surviving pool cannot, the rejection is
    /// reported as [`RejectReason::DegradedMachine`] so capacity lost to
    /// faults stays distinguishable from a job that was simply too big.
    /// With `healthy == clusters()` this is exactly
    /// [`AdmissionController::admit`].
    pub fn admit_degraded(&self, job: &Job, healthy: u64) -> AdmissionDecision {
        match self.admit_with_clusters(job, healthy) {
            AdmissionDecision::Reject {
                reason: RejectReason::NotEnoughClusters { required },
            } if healthy < self.clusters && required <= self.clusters => {
                AdmissionDecision::Reject {
                    reason: RejectReason::DegradedMachine { required, healthy },
                }
            }
            decision => decision,
        }
    }

    /// [`AdmissionController::admit`] against an explicit machine size —
    /// the engine passes the *healthy* cluster count here, so quarantine
    /// shrinks what admission reasons about without rebuilding the
    /// controller.
    pub fn admit_with_clusters(&self, job: &Job, clusters: u64) -> AdmissionDecision {
        let model = self.table.get(job.kernel);
        let budget = job.deadline as f64;
        let host_predicted = model.host.predict(job.n);
        let host_meets_deadline = host_predicted <= budget;
        match decide(&model.accel, job.n, budget, clusters) {
            Decision::Offload { m } => {
                // Below break-even the host is faster even than the
                // deadline-minimal partition: keep the job local and
                // leave the clusters to bigger tenants.
                if !should_offload(&model.host, &model.accel, job.n, m) && host_meets_deadline {
                    AdmissionDecision::Host {
                        predicted: host_predicted,
                    }
                } else {
                    AdmissionDecision::Offload {
                        m_min: m,
                        predicted: model.accel.predict(m, job.n),
                    }
                }
            }
            Decision::NotEnoughClusters { required } => {
                if host_meets_deadline {
                    AdmissionDecision::Host {
                        predicted: host_predicted,
                    }
                } else {
                    AdmissionDecision::Reject {
                        reason: RejectReason::NotEnoughClusters { required },
                    }
                }
            }
            Decision::Infeasible => {
                if host_meets_deadline {
                    AdmissionDecision::Host {
                        predicted: host_predicted,
                    }
                } else {
                    AdmissionDecision::Reject {
                        reason: RejectReason::Infeasible,
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::KernelId;

    fn controller() -> AdmissionController {
        AdmissionController::new(ModelTable::paper_defaults(), 32)
    }

    fn job(n: u64, deadline: u64) -> Job {
        Job {
            id: 0,
            kernel: KernelId::Daxpy,
            n,
            arrival: 0,
            deadline,
        }
    }

    #[test]
    fn generous_deadlines_offload_with_small_partitions() {
        // Paper model at N=1024: t̂(1, 1024) = 956 — one cluster is
        // already enough for a 1000-cycle deadline.
        match controller().admit(&job(1024, 1000)) {
            AdmissionDecision::Offload { m_min, predicted } => {
                assert_eq!(m_min, 1);
                assert!(predicted <= 1000.0);
            }
            other => panic!("expected offload, got {other:?}"),
        }
    }

    #[test]
    fn tight_deadlines_need_more_clusters() {
        let loose = match controller().admit(&job(1024, 1000)) {
            AdmissionDecision::Offload { m_min, .. } => m_min,
            other => panic!("{other:?}"),
        };
        let tight = match controller().admit(&job(1024, 650)) {
            AdmissionDecision::Offload { m_min, .. } => m_min,
            other => panic!("{other:?}"),
        };
        assert!(tight > loose);
    }

    #[test]
    fn tiny_jobs_stay_on_the_host() {
        // N=64 is far below break-even: the 367-cycle offload constant
        // dominates, so even though offloading is feasible, the host
        // wins.
        match controller().admit(&job(64, 100_000)) {
            AdmissionDecision::Host { predicted } => assert!(predicted < 100_000.0),
            other => panic!("expected host, got {other:?}"),
        }
    }

    #[test]
    fn impossible_deadlines_reject() {
        // Even M→∞ cannot beat c0 + c_mem·N = 367 + 256 cycles.
        match controller().admit(&job(1024, 300)) {
            AdmissionDecision::Reject { reason } => {
                assert_eq!(reason, RejectReason::Infeasible);
            }
            other => panic!("expected reject, got {other:?}"),
        }
    }

    #[test]
    fn degraded_admission_types_quarantine_losses() {
        let c = controller();
        let j = job(1024, 700); // needs >2 clusters, host too slow
        match c.admit_degraded(&j, 2) {
            AdmissionDecision::Reject {
                reason: RejectReason::DegradedMachine { required, healthy },
            } => {
                assert!(required > 2);
                assert_eq!(healthy, 2);
            }
            other => panic!("expected degraded rejection, got {other:?}"),
        }
        // At full health the two entry points agree exactly.
        assert_eq!(c.admit_degraded(&j, 32), c.admit(&j));
    }

    #[test]
    fn small_machines_reject_what_big_machines_accept() {
        let small = AdmissionController::new(ModelTable::paper_defaults(), 2);
        let j = job(1024, 700);
        assert!(matches!(
            controller().admit(&j),
            AdmissionDecision::Offload { .. }
        ));
        assert!(matches!(
            small.admit(&j),
            AdmissionDecision::Reject {
                reason: RejectReason::NotEnoughClusters { .. }
            }
        ));
    }
}
