//! # mpsoc-sched
//!
//! Deterministic multi-tenant offload scheduling on top of the
//! `mpsoc-offload` runtime: the paper's analytic model (Eq. 1) and
//! minimum-cluster solution (Eq. 3) put to work as an *online resource
//! manager* rather than a one-shot calculator.
//!
//! The pipeline:
//!
//! 1. **Workloads** ([`Workload`]) — seeded synthetic job streams
//!    (open-loop Poisson, closed-loop fixed-population, bursty) over the
//!    vector kernel zoo, each job carrying a problem size and a relative
//!    deadline.
//! 2. **Calibration** ([`calibrate`]) — per-kernel `t̂(M, N)` and host
//!    cost models fitted from measured offloads on the simulated SoC.
//! 3. **Admission** ([`AdmissionController`]) — Eq. 3 per arrival:
//!    offload with `M_min` clusters, fall back to the host below
//!    break-even or when the accelerator cannot meet the deadline, or
//!    reject.
//! 4. **Allocation** ([`Allocator`]) — disjoint [`ClusterMask`]
//!    partitions carved from the free set, so co-resident tenants never
//!    share a cluster.
//! 5. **Policies** ([`SchedPolicy`]) — FIFO first-fit, smallest-first,
//!    EDF, and the model-guided packer that re-solves Eq. 3 against
//!    remaining slack and backfills.
//! 6. **Engine & metrics** ([`Engine`], [`RunReport`]) — a discrete-event
//!    virtual-time simulation producing serializable per-job records and
//!    aggregate throughput/latency/miss-rate/utilization metrics.
//!
//! Everything is deterministic under a fixed seed: two identical runs
//! serialize to byte-identical reports.
//!
//! ## Example
//!
//! ```
//! use mpsoc_sched::{
//!     ArrivalPattern, Engine, FifoFirstFit, ModelGuided, ModelTable, ServiceBackend, Workload,
//! };
//!
//! let table = ModelTable::paper_defaults();
//! let workload = Workload::balanced(
//!     40,
//!     0xD5,
//!     ArrivalPattern::Poisson { mean_interarrival: 400.0 },
//! );
//! let jobs = workload.generate(&table);
//! let mut engine = Engine::new(table.clone(), 32, ServiceBackend::analytic(table));
//! let fifo = engine.run(&jobs, &mut FifoFirstFit).unwrap();
//! let guided = engine.run(&jobs, &mut ModelGuided).unwrap();
//! assert!(guided.metrics.miss_rate <= fifo.metrics.miss_rate);
//! ```
//!
//! [`ClusterMask`]: mpsoc_noc::ClusterMask

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod admission;
mod alloc;
mod calibrate;
mod cost_gate;
mod engine;
mod error;
mod job;
mod lint_gate;
mod metrics;
mod policy;
mod quarantine;
mod service;
mod shard;
mod workload;

pub use admission::{AdmissionController, AdmissionDecision, RejectReason};
pub use alloc::Allocator;
pub use calibrate::{calibrate, CalibrationGrid, KernelModel, ModelTable};
pub use cost_gate::CostGate;
pub use engine::Engine;
pub use error::SchedError;
pub use job::{Job, KernelId};
pub use lint_gate::LintGate;
pub use metrics::{JobOutcome, JobRecord, Metrics, RunReport};
pub use policy::{
    all_policies, EarliestDeadlineFirst, FifoFirstFit, ModelGuided, Placement, QueuedJob,
    SchedContext, SchedPolicy, SmallestFirst,
};
pub use quarantine::{QuarantineEvent, StrikeBoard, AUTO_QUARANTINE_STRIKES};
pub use service::ServiceBackend;
pub use shard::{CostCheck, ShardDecision, ShardSim, COSIM_MAX_REDISPATCH};
pub use workload::{ArrivalPattern, Workload};
