//! Static verification at admission: jobs whose generated program fails
//! [`mpsoc_lint`] are rejected before they can touch the machine.
//!
//! The gate lints the *worst-case* core program for a job — core 0 of a
//! fully populated cluster, which owns the largest slice plus any halo —
//! against the target TCDM geometry. Verdicts are memoized per
//! `(kernel, n)`, so a stream of thousands of jobs over the usual handful
//! of kernel/size pairs pays for codegen and analysis once per pair.

use std::collections::HashMap;

use mpsoc_lint::descriptor::reference_slices;
use mpsoc_lint::{lint_program, LintContext, LintReport};

use crate::job::{Job, KernelId};

/// A memoizing lint check applied to every arriving job.
#[derive(Debug, Clone)]
pub struct LintGate {
    context: LintContext,
    cores_per_cluster: usize,
    verdicts: HashMap<(KernelId, u64), Option<LintReport>>,
}

impl LintGate {
    /// A gate checking programs against `context`'s TCDM geometry,
    /// assuming `cores_per_cluster` worker cores share each cluster.
    pub fn new(context: LintContext, cores_per_cluster: usize) -> Self {
        assert!(cores_per_cluster > 0, "clusters need at least one core");
        LintGate {
            context,
            cores_per_cluster,
            verdicts: HashMap::new(),
        }
    }

    /// A gate for the calibrated Manticore-class geometry (8 worker
    /// cores, 256 KiB TCDM).
    pub fn manticore() -> Self {
        LintGate::new(LintContext::manticore(), 8)
    }

    /// Checks one job. `None` means the program lints clean (warnings
    /// included — the gate only blocks on errors); `Some(report)` carries
    /// the failing report.
    pub fn check(&mut self, job: &Job) -> Option<&LintReport> {
        let key = (job.kernel, job.n);
        if !self.verdicts.contains_key(&key) {
            let verdict = self.lint(job.kernel, job.n);
            self.verdicts.insert(key, verdict);
        }
        self.verdicts[&key].as_ref()
    }

    fn lint(&self, kernel: KernelId, n: u64) -> Option<LintReport> {
        let k = kernel.instantiate();
        let slices = reference_slices(k.as_ref(), n, self.cores_per_cluster);
        // Core 0 holds the biggest slice (remainders go to low cores), so
        // its program has the worst-case footprint and loop structure.
        let slice = slices.first()?;
        if slice.elems == 0 {
            return None;
        }
        let Ok(program) = k.codegen(slice) else {
            // A builder refusal surfaces through the service backend's
            // own typed error path; the gate only judges programs that
            // built.
            return None;
        };
        let report = lint_program(&program, &self.context);
        if report.has_errors() {
            Some(report)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(kernel: KernelId, n: u64) -> Job {
        Job {
            id: 0,
            kernel,
            n,
            arrival: 0,
            deadline: 10_000,
        }
    }

    #[test]
    fn zoo_kernels_pass_on_real_geometry() {
        let mut gate = LintGate::manticore();
        for kernel in KernelId::ALL {
            for n in [1, 64, 1024] {
                assert!(
                    gate.check(&job(kernel, n)).is_none(),
                    "{kernel} n={n} failed the gate"
                );
            }
        }
    }

    #[test]
    fn shrunken_tcdm_fails_the_gate() {
        // 64 words of TCDM cannot hold a 1024-element daxpy: the interval
        // pass proves out-of-bounds accesses and the gate blocks the job.
        let tiny = LintContext {
            tcdm_words: 64,
            ..LintContext::manticore()
        };
        let mut gate = LintGate::new(tiny, 8);
        let report = gate.check(&job(KernelId::Daxpy, 1024)).expect("must fail");
        assert!(report.has_errors());
    }

    #[test]
    fn verdicts_are_memoized() {
        let mut gate = LintGate::manticore();
        gate.check(&job(KernelId::Daxpy, 1024));
        gate.check(&job(KernelId::Daxpy, 1024));
        gate.check(&job(KernelId::Dot, 512));
        assert_eq!(gate.verdicts.len(), 2);
    }
}
