//! Scheduler error type.

use mpsoc_offload::model::FitError;
use mpsoc_offload::OffloadError;

/// Anything that can go wrong while calibrating or simulating.
#[derive(Debug)]
pub enum SchedError {
    /// An offload (or host run) on the underlying SoC failed.
    Offload(OffloadError),
    /// Fitting a kernel's runtime model failed.
    Fit(FitError),
}

impl std::fmt::Display for SchedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchedError::Offload(e) => write!(f, "offload failed: {e}"),
            SchedError::Fit(e) => write!(f, "model fit failed: {e}"),
        }
    }
}

impl std::error::Error for SchedError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SchedError::Offload(e) => Some(e),
            SchedError::Fit(e) => Some(e),
        }
    }
}

impl From<OffloadError> for SchedError {
    fn from(e: OffloadError) -> Self {
        SchedError::Offload(e)
    }
}

impl From<FitError> for SchedError {
    fn from(e: FitError) -> Self {
        SchedError::Fit(e)
    }
}
