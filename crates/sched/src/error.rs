//! Scheduler error type.

use mpsoc_offload::model::FitError;
use mpsoc_offload::OffloadError;

/// Anything that can go wrong while calibrating or simulating.
#[derive(Debug)]
pub enum SchedError {
    /// An offload (or host run) on the underlying SoC failed.
    Offload(OffloadError),
    /// Fitting a kernel's runtime model failed.
    Fit(FitError),
    /// The co-simulated session went quiet with tenants still in flight
    /// and no arrival left to advance virtual time: an in-flight job
    /// will never complete (e.g. a wedged completion barrier after an
    /// injected fault).
    SessionStalled {
        /// Tenants stuck in flight.
        in_flight: usize,
    },
    /// The co-simulated session delivered a completion for a job the
    /// engine never submitted.
    UnknownCompletion {
        /// The session's job handle.
        job: u64,
    },
}

impl std::fmt::Display for SchedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchedError::Offload(e) => write!(f, "offload failed: {e}"),
            SchedError::Fit(e) => write!(f, "model fit failed: {e}"),
            SchedError::SessionStalled { in_flight } => write!(
                f,
                "co-simulated session stalled with {in_flight} tenant(s) in flight \
                 that will never complete"
            ),
            SchedError::UnknownCompletion { job } => {
                write!(f, "completion for unknown session job {job}")
            }
        }
    }
}

impl std::error::Error for SchedError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SchedError::Offload(e) => Some(e),
            SchedError::Fit(e) => Some(e),
            SchedError::SessionStalled { .. } | SchedError::UnknownCompletion { .. } => None,
        }
    }
}

impl From<OffloadError> for SchedError {
    fn from(e: OffloadError) -> Self {
        SchedError::Offload(e)
    }
}

impl From<FitError> for SchedError {
    fn from(e: FitError) -> Self {
        SchedError::Fit(e)
    }
}
