//! The deterministic discrete-event engine: virtual time, admission,
//! spatial allocation and policy-driven dispatch over one job stream.
//!
//! Virtual time advances from event to event (arrivals and partition
//! completions). How concurrent tenants are timed depends on the
//! service backend:
//!
//! - Under [`ServiceBackend::Measured`] and [`ServiceBackend::Analytic`]
//!   each offload contributes a standalone (measured-solo or predicted)
//!   cycle count as its partition's busy interval; cross-tenant NoC/HBM
//!   interference is *not* modeled — the paper's first-order premise
//!   that TCDMs and the mask-addressed offload path make partitions
//!   independent.
//! - Under [`ServiceBackend::CoSimulated`] the engine drives one shared
//!   SoC session: every placed job is submitted into the same
//!   event-driven machine, tenants on disjoint partitions overlap on
//!   the real NoC switch tree, HBM bandwidth/AMO unit and the serial
//!   host core, and each job's completion time — including its
//!   contention-stretched phases, attributed in
//!   [`JobRecord::contention_cycles`] — emerges from the co-simulation.
//!
//! Determinism: events are ordered by `(time, sequence)`, all queues are
//! insertion-ordered, and every service backend is deterministic — so a
//! fixed `(workload, policy, machine)` triple always yields a
//! byte-identical [`RunReport`].
//!
//! Host-executed jobs occupy a single serial host server (FIFO): the
//! host core runs one kernel at a time, concurrently with the clusters.

use std::collections::BTreeMap;

use mpsoc_noc::ClusterMask;
use mpsoc_sim::Cycle;
use mpsoc_telemetry::{EventKind, EventTrace, Unit};

use crate::admission::{AdmissionController, AdmissionDecision, RejectReason};
use crate::alloc::Allocator;
use crate::calibrate::ModelTable;
use crate::cost_gate::CostGate;
use crate::error::SchedError;
use crate::job::Job;
use crate::lint_gate::LintGate;
use crate::metrics::{JobOutcome, JobRecord, Metrics, RunReport};
use crate::policy::{Placement, QueuedJob, SchedContext, SchedPolicy};
use crate::quarantine::{QuarantineEvent, StrikeBoard, AUTO_QUARANTINE_STRIKES};
use crate::service::ServiceBackend;

/// The multi-tenant scheduler: admission + allocation + dispatch over a
/// service-time backend.
#[derive(Debug)]
pub struct Engine {
    admission: AdmissionController,
    backend: ServiceBackend,
    clusters: usize,
    quarantined: ClusterMask,
    telemetry: EventTrace,
    lint_gate: Option<LintGate>,
    cost_gate: Option<CostGate>,
    /// Corrupt completions flagged on one cluster before the engine
    /// quarantines it automatically (co-simulated runs only); `None`
    /// disables the closed loop.
    auto_quarantine: Option<u32>,
    /// Automatic quarantine decisions of the last [`Engine::run`].
    quarantine_log: Vec<QuarantineEvent>,
}

/// A job in flight on a carved partition.
#[derive(Debug, Clone, Copy)]
struct Running {
    record_index: usize,
    mask: ClusterMask,
    start: u64,
    job: Job,
    m: usize,
    /// Corruption re-dispatches charged so far (co-simulated backend).
    retries: u32,
    /// Injected faults observed across every attempt.
    faults: u64,
    /// Contention cycles accumulated across every attempt.
    contention: u64,
}

impl Engine {
    /// An engine over a machine of `clusters` clusters, using `table`
    /// for admission and predictions and `backend` for service times.
    pub fn new(table: ModelTable, clusters: usize, backend: ServiceBackend) -> Self {
        Engine {
            admission: AdmissionController::new(table, clusters as u64),
            backend,
            clusters,
            quarantined: ClusterMask::EMPTY,
            telemetry: EventTrace::disabled(),
            lint_gate: None,
            cost_gate: None,
            auto_quarantine: Some(AUTO_QUARANTINE_STRIKES),
            quarantine_log: Vec::new(),
        }
    }

    /// Retires `mask` from the allocatable pool — typically clusters a
    /// resilient execution layer has diagnosed as faulty. Quarantine is
    /// cumulative and applies to every subsequent [`Engine::run`]: the
    /// allocator never grants a quarantined cluster, and jobs whose
    /// Eq. 3 minimum partition exceeds the surviving pool are rejected
    /// with [`RejectReason::DegradedMachine`].
    ///
    /// Quarantining also drops the measured backend's memoized solo-run
    /// offload timings ([`ServiceBackend::invalidate_measurements`]):
    /// they may have been taken on partitions containing the cluster
    /// now known to be faulty.
    /// Quarantining also drops the static cost gate's memoized bounds
    /// and re-bounds it to the surviving pool: min-best totals were
    /// computed over partitions the machine can no longer grant.
    pub fn quarantine(&mut self, mask: ClusterMask) {
        self.quarantined = self
            .quarantined
            .union(mask.intersection(ClusterMask::first(self.clusters)));
        self.backend.invalidate_measurements();
        if let Some(gate) = self.cost_gate.as_mut() {
            gate.restrict_clusters(self.clusters - self.quarantined.count());
        }
    }

    /// The clusters currently quarantined.
    pub fn quarantined(&self) -> ClusterMask {
        self.quarantined
    }

    /// Configures automatic quarantine for co-simulated runs: a cluster
    /// is retired after `threshold` corrupt completions flagged it
    /// (default [`AUTO_QUARANTINE_STRIKES`]); `None` disables the
    /// closed loop — corruption is then absorbed by re-dispatch alone.
    pub fn set_auto_quarantine(&mut self, threshold: Option<u32>) {
        self.auto_quarantine = threshold;
    }

    /// Automatic quarantine decisions made during the last
    /// [`Engine::run`], in firing order.
    pub fn quarantine_events(&self) -> &[QuarantineEvent] {
        &self.quarantine_log
    }

    /// Healthy (non-quarantined) clusters.
    fn healthy_clusters(&self) -> usize {
        self.clusters - self.quarantined.count()
    }

    /// Enables static program verification at admission: every arriving
    /// job's worst-case core program is linted (memoized per kernel and
    /// problem size) and jobs with lint *errors* are rejected with
    /// [`RejectReason::ProgramLint`] before admission control runs.
    pub fn enable_lint(&mut self, gate: LintGate) {
        self.lint_gate = Some(gate);
    }

    /// Enables static cost verification at admission: jobs whose
    /// deadline undercuts the *static best-case* runtime bound at every
    /// cluster count, strategy, and the host path are rejected with
    /// [`RejectReason::StaticInfeasible`] before Eq. 3 runs. Verdicts
    /// are memoized per kernel and problem size.
    pub fn enable_cost(&mut self, gate: CostGate) {
        self.cost_gate = Some(gate);
    }

    /// The admission controller in use.
    pub fn admission(&self) -> &AdmissionController {
        &self.admission
    }

    /// Enables typed-event telemetry for subsequent [`Engine::run`]
    /// calls: job arrivals, queue waits, partition occupancy spans,
    /// host runs and rejections. Disabled, every recording site is a
    /// single branch and reports stay byte-identical.
    pub fn enable_telemetry(&mut self, capacity: usize) {
        self.telemetry = EventTrace::enabled(capacity);
    }

    /// The typed-event trace of the last [`Engine::run`] (empty unless
    /// [`Engine::enable_telemetry`] was called).
    pub fn telemetry(&self) -> &EventTrace {
        &self.telemetry
    }

    /// Simulates `jobs` (must be sorted by arrival time) under `policy`.
    ///
    /// # Errors
    ///
    /// Service-backend failures (offload geometry violations, host-run
    /// faults).
    ///
    /// # Panics
    ///
    /// Panics if `jobs` is not sorted by arrival, or if the policy
    /// returns an invalid placement (out-of-range index, zero or
    /// unavailable partition size).
    pub fn run(
        &mut self,
        jobs: &[Job],
        policy: &mut dyn SchedPolicy,
    ) -> Result<RunReport, SchedError> {
        assert!(
            jobs.windows(2).all(|w| w[0].arrival <= w[1].arrival),
            "job stream must be sorted by arrival time"
        );
        let _prof = mpsoc_sim::profile::scope("sched.engine.run");
        self.telemetry.clear();
        if matches!(self.backend, ServiceBackend::CoSimulated { .. }) {
            return self.run_cosimulated(jobs, policy);
        }
        let healthy = self.healthy_clusters();
        let mut allocator = Allocator::with_quarantine(self.clusters, self.quarantined);
        let mut records: Vec<JobRecord> = Vec::with_capacity(jobs.len());
        let mut ready: Vec<QueuedJob> = Vec::new();
        // Completion events keyed by (finish, sequence): BTreeMap pops
        // in deterministic order even for simultaneous completions.
        let mut completions: BTreeMap<(u64, u64), Running> = BTreeMap::new();
        let mut seq = 0u64;
        let mut host_free_at = 0u64;
        let mut next_arrival = 0usize;

        loop {
            // Next event: the earlier of the next arrival and the next
            // completion; completions win ties so freed clusters are
            // visible to jobs arriving at the same cycle.
            let arrival_t = jobs.get(next_arrival).map(|j| j.arrival);
            let completion_t = completions.keys().next().map(|&(t, _)| t);
            let now = match (arrival_t, completion_t) {
                (Some(a), Some(c)) => a.min(c),
                (Some(a), None) => a,
                (None, Some(c)) => c,
                (None, None) => break,
            };

            // 1. Retire everything finishing at `now`.
            while let Some((&key @ (t, _), _)) = completions.iter().next() {
                if t > now {
                    break;
                }
                let done = completions.remove(&key).expect("key just observed");
                allocator.release(done.mask);
                records[done.record_index] = JobRecord {
                    job: done.job,
                    outcome: JobOutcome::Offloaded {
                        start: done.start,
                        finish: t,
                        m: done.m,
                    },
                    contention_cycles: 0,
                    retries: 0,
                    faults_observed: 0,
                };
            }

            // 2. Admit everything arriving at `now`.
            while let Some(job) = jobs.get(next_arrival).filter(|j| j.arrival == now) {
                next_arrival += 1;
                self.telemetry.instant(
                    Cycle::new(now),
                    Unit::SchedHost,
                    EventKind::JobArrive,
                    job.id,
                );
                if let Some(gate) = self.lint_gate.as_mut() {
                    if let Some(report) = gate.check(job) {
                        let errors = report.error_count() as u32;
                        self.telemetry.instant(
                            Cycle::new(now),
                            Unit::SchedHost,
                            EventKind::Reject,
                            job.id,
                        );
                        records.push(JobRecord {
                            job: *job,
                            outcome: JobOutcome::Rejected {
                                reason: RejectReason::ProgramLint { errors },
                            },
                            contention_cycles: 0,
                            retries: 0,
                            faults_observed: 0,
                        });
                        continue;
                    }
                }
                if let Some(gate) = self.cost_gate.as_mut() {
                    if let Some(best) = gate.check(job) {
                        self.telemetry.instant(
                            Cycle::new(now),
                            Unit::SchedHost,
                            EventKind::Reject,
                            job.id,
                        );
                        records.push(JobRecord {
                            job: *job,
                            outcome: JobOutcome::Rejected {
                                reason: RejectReason::StaticInfeasible { best },
                            },
                            contention_cycles: 0,
                            retries: 0,
                            faults_observed: 0,
                        });
                        continue;
                    }
                }
                match self.admission.admit_degraded(job, healthy as u64) {
                    AdmissionDecision::Offload { m_min, predicted } => {
                        // Placeholder until the offload completes; the
                        // queue remembers where to write the outcome.
                        records.push(JobRecord {
                            job: *job,
                            outcome: JobOutcome::Offloaded {
                                start: 0,
                                finish: 0,
                                m: 0,
                            },
                            contention_cycles: 0,
                            retries: 0,
                            faults_observed: 0,
                        });
                        ready.push(QueuedJob {
                            job: *job,
                            m_min,
                            predicted,
                        });
                    }
                    AdmissionDecision::Host { .. } => {
                        let start = now.max(host_free_at);
                        let cycles = self.backend.host_cycles(job.kernel, job.n)?;
                        let finish = start + cycles;
                        host_free_at = finish;
                        let span = self.telemetry.begin(
                            Cycle::new(start),
                            Unit::SchedHost,
                            EventKind::HostRun,
                        );
                        self.telemetry.end(
                            Cycle::new(finish),
                            Unit::SchedHost,
                            EventKind::HostRun,
                            span,
                        );
                        records.push(JobRecord {
                            job: *job,
                            outcome: JobOutcome::Host { start, finish },
                            contention_cycles: 0,
                            retries: 0,
                            faults_observed: 0,
                        });
                    }
                    AdmissionDecision::Reject { reason } => {
                        self.telemetry.instant(
                            Cycle::new(now),
                            Unit::SchedHost,
                            EventKind::Reject,
                            job.id,
                        );
                        records.push(JobRecord {
                            job: *job,
                            outcome: JobOutcome::Rejected { reason },
                            contention_cycles: 0,
                            retries: 0,
                            faults_observed: 0,
                        });
                    }
                }
            }

            // 3. Let the policy place queued jobs until it passes.
            loop {
                let ctx = SchedContext {
                    now,
                    free_clusters: allocator.free_count(),
                    total_clusters: healthy,
                    models: self.admission.table(),
                };
                let Some(Placement { queue_index, m }) = policy.pick(&ready, &ctx) else {
                    break;
                };
                assert!(queue_index < ready.len(), "policy picked a ghost job");
                let queued = ready.remove(queue_index);
                let mask = allocator
                    .carve(m)
                    .unwrap_or_else(|| panic!("policy over-allocated: {m} clusters not free"));
                let cycles = self
                    .backend
                    .offload_cycles(queued.job.kernel, queued.job.n, mask)?;
                let record_index = records
                    .iter()
                    .position(|r| r.job.id == queued.job.id)
                    .expect("queued job has a placeholder record");
                // One track per partition, keyed by its lowest cluster:
                // disjoint masks never overlap in time on one track.
                let part = Unit::Partition(mask.iter().next().unwrap_or(0) as u32);
                if queued.job.arrival < now {
                    self.telemetry.instant(
                        Cycle::new(now),
                        part,
                        EventKind::QueueWait,
                        now - queued.job.arrival,
                    );
                }
                let span = self
                    .telemetry
                    .begin(Cycle::new(now), part, EventKind::Offload);
                self.telemetry
                    .end(Cycle::new(now + cycles), part, EventKind::Offload, span);
                completions.insert(
                    (now + cycles, seq),
                    Running {
                        record_index,
                        mask,
                        start: now,
                        job: queued.job,
                        m,
                        retries: 0,
                        faults: 0,
                        contention: 0,
                    },
                );
                seq += 1;
            }
        }

        assert!(ready.is_empty(), "policy left admitted jobs unscheduled");
        let metrics = Metrics::from_records(&records, self.clusters);
        Ok(RunReport {
            policy: policy.name().to_owned(),
            clusters: self.clusters,
            metrics,
            records,
        })
    }

    /// The [`ServiceBackend::CoSimulated`] run loop: one shared SoC
    /// session carries every placed job, and virtual time follows the
    /// SoC's own event queue instead of pre-charged busy intervals.
    ///
    /// The scheduling semantics mirror [`Engine::run`] exactly —
    /// completions retire before same-cycle arrivals are admitted (the
    /// session is advanced with the next arrival as its horizon, so any
    /// completion at or before that instant surfaces first), the policy
    /// re-picks after every event, and host-fallback jobs occupy the
    /// virtual serial host server. What changes is where offload
    /// finish times come from: each placement is *submitted* into the
    /// shared session and its completion — host queueing, NoC stalls,
    /// HBM queueing and AMO waits included — emerges from co-simulating
    /// all in-flight tenants together.
    fn run_cosimulated(
        &mut self,
        jobs: &[Job],
        policy: &mut dyn SchedPolicy,
    ) -> Result<RunReport, SchedError> {
        let mut healthy = self.healthy_clusters();
        let mut allocator = Allocator::with_quarantine(self.clusters, self.quarantined);
        // The closed loop from fault observation to scheduling decision:
        // corrupt completions accumulate strikes per flagged cluster and
        // crossing the hysteresis threshold quarantines the cluster
        // mid-stream — no external diagnosis call involved.
        let mut strikes = StrikeBoard::with_threshold(self.clusters, self.auto_quarantine);
        self.quarantine_log.clear();
        let clusters = self.clusters;
        let ServiceBackend::CoSimulated {
            offloader,
            seed,
            strategy,
            host_cache,
        } = &mut self.backend
        else {
            unreachable!("run_cosimulated requires a co-simulated backend");
        };
        let seed = *seed;
        let strategy = *strategy;
        offloader.begin_jobs();

        let mut records: Vec<JobRecord> = Vec::with_capacity(jobs.len());
        let mut ready: Vec<QueuedJob> = Vec::new();
        // In-flight tenants keyed by their session job handle.
        let mut running: BTreeMap<mpsoc_offload::JobId, Running> = BTreeMap::new();
        let mut host_free_at = 0u64;
        let mut next_arrival = 0usize;

        loop {
            let arrival_t = jobs.get(next_arrival).map(|j| j.arrival);

            // 1. Drive the shared SoC to the next event. Advancing with
            //    the next arrival as horizon makes completions win ties:
            //    a tenant finishing at the arrival cycle retires (and
            //    frees its partition) before the arrival is admitted.
            let now = if !running.is_empty() {
                let horizon = arrival_t.map_or(Cycle::MAX, Cycle::new);
                match offloader.advance_jobs(horizon)? {
                    mpsoc_offload::SessionStep::Completed(t) => {
                        let Some(mut done) = running.remove(&t.job) else {
                            return Err(SchedError::UnknownCompletion { job: t.job });
                        };
                        done.faults += t.faults_injected;
                        done.contention += t.contention.total_cycles();
                        let finish = t.finished_at.as_u64();
                        let part = Unit::Partition(done.mask.iter().next().unwrap_or(0) as u32);
                        if t.corrupt_clusters != 0 {
                            // Strike accounting happens on *every*
                            // corrupt completion — including the final
                            // attempt of an exhausted retry budget — so
                            // a flaky cluster is diagnosed even when
                            // re-dispatch keeps absorbing its output.
                            let fire = strikes.record(t.corrupt_clusters, self.quarantined);
                            if !fire.is_empty() {
                                for cluster in fire.iter() {
                                    self.telemetry.instant(
                                        t.finished_at,
                                        Unit::SchedHost,
                                        EventKind::Quarantine,
                                        cluster as u64,
                                    );
                                    self.quarantine_log.push(QuarantineEvent {
                                        at: finish,
                                        cluster,
                                        strikes: strikes.strikes(cluster),
                                    });
                                }
                                self.quarantined = self.quarantined.union(fire);
                                allocator.quarantine(fire);
                                healthy = clusters - self.quarantined.count();
                                if let Some(gate) = self.cost_gate.as_mut() {
                                    gate.restrict_clusters(healthy);
                                }
                            }
                        }
                        if t.corrupt_clusters != 0
                            && done.retries < crate::shard::COSIM_MAX_REDISPATCH
                        {
                            // The DMA CRC flagged corrupted data: the
                            // result cannot be returned, so re-dispatch
                            // on the same partition with fresh fault
                            // dice and charge the retry to the record.
                            done.retries += 1;
                            self.telemetry.instant(
                                t.finished_at,
                                part,
                                EventKind::Redispatch,
                                done.job.id,
                            );
                            let (x, y) = crate::calibrate::operands(done.job.n, seed ^ done.job.n);
                            let handle = offloader.submit_at(
                                done.job.kernel.instantiate().as_ref(),
                                &x,
                                &y,
                                done.mask,
                                strategy,
                                t.finished_at,
                            )?;
                            running.insert(handle, done);
                            finish
                        } else {
                            allocator.release(done.mask);
                            let span = self.telemetry.begin(
                                Cycle::new(done.start),
                                part,
                                EventKind::Offload,
                            );
                            self.telemetry
                                .end(t.finished_at, part, EventKind::Offload, span);
                            records[done.record_index] = JobRecord {
                                job: done.job,
                                outcome: JobOutcome::Offloaded {
                                    start: done.start,
                                    finish,
                                    m: done.m,
                                },
                                contention_cycles: done.contention,
                                retries: done.retries,
                                faults_observed: done.faults,
                            };
                            finish
                        }
                    }
                    mpsoc_offload::SessionStep::Horizon | mpsoc_offload::SessionStep::Idle => {
                        // With no arrival left to advance virtual time,
                        // a paused session means an in-flight tenant
                        // will never complete (reachable under injected
                        // faults: a wedged barrier or a dead cluster).
                        let Some(t) = arrival_t else {
                            return Err(SchedError::SessionStalled {
                                in_flight: running.len(),
                            });
                        };
                        t
                    }
                }
            } else {
                match arrival_t {
                    Some(a) => a,
                    None => break,
                }
            };

            // 2. Admit everything arriving at `now` (identical to the
            //    legacy path; host fallback runs on the virtual serial
            //    host server, memoized like the measured backend).
            while let Some(job) = jobs.get(next_arrival).filter(|j| j.arrival == now) {
                next_arrival += 1;
                self.telemetry.instant(
                    Cycle::new(now),
                    Unit::SchedHost,
                    EventKind::JobArrive,
                    job.id,
                );
                if let Some(gate) = self.lint_gate.as_mut() {
                    if let Some(report) = gate.check(job) {
                        let errors = report.error_count() as u32;
                        self.telemetry.instant(
                            Cycle::new(now),
                            Unit::SchedHost,
                            EventKind::Reject,
                            job.id,
                        );
                        records.push(JobRecord {
                            job: *job,
                            outcome: JobOutcome::Rejected {
                                reason: RejectReason::ProgramLint { errors },
                            },
                            contention_cycles: 0,
                            retries: 0,
                            faults_observed: 0,
                        });
                        continue;
                    }
                }
                if let Some(gate) = self.cost_gate.as_mut() {
                    if let Some(best) = gate.check(job) {
                        self.telemetry.instant(
                            Cycle::new(now),
                            Unit::SchedHost,
                            EventKind::Reject,
                            job.id,
                        );
                        records.push(JobRecord {
                            job: *job,
                            outcome: JobOutcome::Rejected {
                                reason: RejectReason::StaticInfeasible { best },
                            },
                            contention_cycles: 0,
                            retries: 0,
                            faults_observed: 0,
                        });
                        continue;
                    }
                }
                match self.admission.admit_degraded(job, healthy as u64) {
                    AdmissionDecision::Offload { m_min, predicted } => {
                        records.push(JobRecord {
                            job: *job,
                            outcome: JobOutcome::Offloaded {
                                start: 0,
                                finish: 0,
                                m: 0,
                            },
                            contention_cycles: 0,
                            retries: 0,
                            faults_observed: 0,
                        });
                        ready.push(QueuedJob {
                            job: *job,
                            m_min,
                            predicted,
                        });
                    }
                    AdmissionDecision::Host { .. } => {
                        let start = now.max(host_free_at);
                        let cycles = match host_cache.get(&(job.kernel, job.n)) {
                            Some(&c) => c,
                            None => {
                                let (x, y) = crate::calibrate::operands(job.n, seed ^ job.n);
                                let (c, _) = offloader.run_on_host(
                                    job.kernel.instantiate().as_ref(),
                                    &x,
                                    &y,
                                )?;
                                host_cache.insert((job.kernel, job.n), c);
                                c
                            }
                        };
                        let finish = start + cycles;
                        host_free_at = finish;
                        let span = self.telemetry.begin(
                            Cycle::new(start),
                            Unit::SchedHost,
                            EventKind::HostRun,
                        );
                        self.telemetry.end(
                            Cycle::new(finish),
                            Unit::SchedHost,
                            EventKind::HostRun,
                            span,
                        );
                        records.push(JobRecord {
                            job: *job,
                            outcome: JobOutcome::Host { start, finish },
                            contention_cycles: 0,
                            retries: 0,
                            faults_observed: 0,
                        });
                    }
                    AdmissionDecision::Reject { reason } => {
                        self.telemetry.instant(
                            Cycle::new(now),
                            Unit::SchedHost,
                            EventKind::Reject,
                            job.id,
                        );
                        records.push(JobRecord {
                            job: *job,
                            outcome: JobOutcome::Rejected { reason },
                            contention_cycles: 0,
                            retries: 0,
                            faults_observed: 0,
                        });
                    }
                }
            }

            // 3. Let the policy place queued jobs until it passes; each
            //    placement is submitted into the shared session.
            loop {
                let ctx = SchedContext {
                    now,
                    free_clusters: allocator.free_count(),
                    total_clusters: healthy,
                    models: self.admission.table(),
                };
                let Some(Placement { queue_index, m }) = policy.pick(&ready, &ctx) else {
                    break;
                };
                assert!(queue_index < ready.len(), "policy picked a ghost job");
                let queued = ready.remove(queue_index);
                let mask = allocator
                    .carve(m)
                    .unwrap_or_else(|| panic!("policy over-allocated: {m} clusters not free"));
                let record_index = records
                    .iter()
                    .position(|r| r.job.id == queued.job.id)
                    .expect("queued job has a placeholder record");
                let part = Unit::Partition(mask.iter().next().unwrap_or(0) as u32);
                if queued.job.arrival < now {
                    self.telemetry.instant(
                        Cycle::new(now),
                        part,
                        EventKind::QueueWait,
                        now - queued.job.arrival,
                    );
                }
                let (x, y) = crate::calibrate::operands(queued.job.n, seed ^ queued.job.n);
                let handle = offloader.submit_at(
                    queued.job.kernel.instantiate().as_ref(),
                    &x,
                    &y,
                    mask,
                    strategy,
                    Cycle::new(now),
                )?;
                running.insert(
                    handle,
                    Running {
                        record_index,
                        mask,
                        start: now,
                        job: queued.job,
                        m,
                        retries: 0,
                        faults: 0,
                        contention: 0,
                    },
                );
            }
        }

        // Mid-stream quarantine can strand admitted jobs whose Eq. 3
        // minimum partition no longer fits the surviving pool: resolve
        // them as typed degraded rejections — their admission verdict
        // predates the capacity loss. Anything else left queued really
        // is a policy bug.
        for queued in ready.drain(..) {
            assert!(
                queued.m_min > healthy as u64,
                "policy left a schedulable job unscheduled"
            );
            let record_index = records
                .iter()
                .position(|r| r.job.id == queued.job.id)
                .expect("queued job has a placeholder record");
            records[record_index] = JobRecord {
                job: queued.job,
                outcome: JobOutcome::Rejected {
                    reason: RejectReason::DegradedMachine {
                        required: queued.m_min,
                        healthy: healthy as u64,
                    },
                },
                contention_cycles: 0,
                retries: 0,
                faults_observed: 0,
            };
        }
        let metrics = Metrics::from_records(&records, self.clusters);
        Ok(RunReport {
            policy: policy.name().to_owned(),
            clusters: self.clusters,
            metrics,
            records,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::KernelId;
    use crate::policy::FifoFirstFit;

    fn jobs(specs: &[(u64, u64, u64)]) -> Vec<Job> {
        specs
            .iter()
            .enumerate()
            .map(|(i, &(arrival, n, deadline))| Job {
                id: i as u64,
                kernel: KernelId::Daxpy,
                n,
                arrival,
                deadline,
            })
            .collect()
    }

    fn engine(clusters: usize) -> Engine {
        Engine::new(
            ModelTable::paper_defaults(),
            clusters,
            ServiceBackend::analytic(ModelTable::paper_defaults()),
        )
    }

    #[test]
    fn one_job_runs_to_completion() {
        let stream = jobs(&[(0, 1024, 1000)]);
        let report = engine(8).run(&stream, &mut FifoFirstFit).expect("run");
        assert_eq!(report.metrics.offloaded, 1);
        assert_eq!(report.metrics.deadline_misses, 0);
        match report.records[0].outcome {
            JobOutcome::Offloaded { start, finish, m } => {
                assert_eq!(start, 0);
                assert!(finish > 0);
                assert_eq!(m, 1);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn concurrent_tenants_share_the_machine_spatially() {
        // Two jobs arriving together, each needing 1 cluster on an
        // 8-cluster machine: both run immediately, overlapping in time.
        let stream = jobs(&[(0, 1024, 1000), (0, 1024, 1000)]);
        let report = engine(8).run(&stream, &mut FifoFirstFit).expect("run");
        let (s0, f0, s1, f1) = match (report.records[0].outcome, report.records[1].outcome) {
            (
                JobOutcome::Offloaded {
                    start: s0,
                    finish: f0,
                    ..
                },
                JobOutcome::Offloaded {
                    start: s1,
                    finish: f1,
                    ..
                },
            ) => (s0, f0, s1, f1),
            other => panic!("{other:?}"),
        };
        assert_eq!((s0, s1), (0, 0), "both must start at once");
        assert!(f0 > 0 && f1 > 0);
        assert_eq!(report.metrics.deadline_misses, 0);
    }

    #[test]
    fn saturation_queues_and_misses() {
        // Eight 1-cluster jobs on a 2-cluster machine with deadlines
        // sized for an immediate start: the queue forces misses.
        let stream = jobs(&[(0, 1024, 1000); 8]);
        let report = engine(2).run(&stream, &mut FifoFirstFit).expect("run");
        assert_eq!(report.metrics.offloaded, 8);
        assert!(report.metrics.deadline_misses > 0, "{:?}", report.metrics);
    }

    #[test]
    fn host_jobs_serialize_on_the_host_core() {
        // Tiny jobs below break-even with roomy deadlines: both go to
        // the host, which runs them back to back.
        let stream = jobs(&[(0, 64, 100_000), (0, 64, 100_000)]);
        let report = engine(8).run(&stream, &mut FifoFirstFit).expect("run");
        assert_eq!(report.metrics.host_runs, 2);
        let (f0, s1) = match (report.records[0].outcome, report.records[1].outcome) {
            (JobOutcome::Host { finish, .. }, JobOutcome::Host { start, .. }) => (finish, start),
            other => panic!("{other:?}"),
        };
        assert_eq!(s1, f0, "host is a serial server");
    }

    #[test]
    fn lint_gate_rejects_programs_that_fail_verification() {
        // A 64-word TCDM cannot hold a 1024-element daxpy: the gate's
        // static bounds check proves out-of-TCDM accesses and rejects
        // the job, while a clean small job still schedules normally.
        let stream = jobs(&[(0, 1024, 1000)]);
        let tiny = mpsoc_lint::LintContext {
            tcdm_words: 64,
            ..mpsoc_lint::LintContext::manticore()
        };

        let mut gated = engine(8);
        gated.enable_lint(crate::LintGate::new(tiny, 8));
        let report = gated.run(&stream, &mut FifoFirstFit).expect("run");
        assert_eq!(report.metrics.rejected, 1);
        match report.records[0].outcome {
            JobOutcome::Rejected {
                reason: crate::RejectReason::ProgramLint { errors },
            } => assert!(errors > 0),
            other => panic!("expected lint rejection, got {other:?}"),
        }

        // Same machine, real geometry: the gate waves the job through
        // and the report matches an ungated run exactly.
        let mut real = engine(8);
        real.enable_lint(crate::LintGate::manticore());
        let gated_report = real.run(&stream, &mut FifoFirstFit).expect("run");
        let plain_report = engine(8).run(&stream, &mut FifoFirstFit).expect("run");
        assert_eq!(gated_report, plain_report);
    }

    #[test]
    fn rejections_are_recorded() {
        let stream = jobs(&[(0, 1024, 300)]); // under c0 + c_mem·N: infeasible
        let report = engine(8).run(&stream, &mut FifoFirstFit).expect("run");
        assert_eq!(report.metrics.rejected, 1);
        assert!(matches!(
            report.records[0].outcome,
            JobOutcome::Rejected { .. }
        ));
    }

    #[test]
    fn telemetry_traces_queueing_and_rejections() {
        // Mixed stream on a tight machine: offloads that queue, a host
        // run and an infeasible job.
        let stream = jobs(&[
            (0, 1024, 1000),
            (0, 1024, 1000),
            (0, 1024, 1000),
            (10, 64, 100_000),
            (20, 1024, 30), // infeasible: rejected
        ]);
        let mut e = engine(2);
        e.enable_telemetry(4096);
        e.run(&stream, &mut FifoFirstFit).expect("run");
        let kinds: Vec<&str> = e
            .telemetry()
            .events()
            .iter()
            .map(|ev| ev.kind.name())
            .collect();
        assert!(kinds.contains(&"job_arrive"));
        assert!(kinds.contains(&"offload"));
        assert!(kinds.contains(&"queue_wait"));
        assert!(kinds.contains(&"host_run"));
        assert!(kinds.contains(&"reject"));

        // The trace exports to schema-valid Chrome trace JSON.
        let json = mpsoc_telemetry::chrome_trace_json(e.telemetry());
        let summary = mpsoc_telemetry::validate_chrome_trace(&json).expect("valid");
        assert!(summary.spans >= 4, "3 offload spans + 1 host run");
    }

    #[test]
    fn telemetry_does_not_change_reports() {
        let stream = jobs(&[(0, 1024, 1000), (0, 2048, 2000), (100, 256, 100_000)]);
        let plain = engine(8).run(&stream, &mut FifoFirstFit).expect("run");
        let mut traced_engine = engine(8);
        traced_engine.enable_telemetry(4096);
        let traced = traced_engine.run(&stream, &mut FifoFirstFit).expect("run");
        assert_eq!(plain, traced);
    }

    fn cosim_engine(clusters: usize) -> Engine {
        let offloader =
            mpsoc_offload::Offloader::new(mpsoc_soc::SocConfig::with_clusters(clusters))
                .expect("soc");
        Engine::new(
            ModelTable::paper_defaults(),
            clusters,
            ServiceBackend::co_simulated(offloader, 0xBEEF),
        )
    }

    #[test]
    fn cosimulated_backend_schedules_like_the_others() {
        let stream = jobs(&[(0, 1024, 1200), (0, 1024, 1200), (500, 2048, 3000)]);
        let report = cosim_engine(8)
            .run(&stream, &mut FifoFirstFit)
            .expect("run");
        assert_eq!(report.metrics.offloaded, 3);
        for r in &report.records {
            match r.outcome {
                JobOutcome::Offloaded { start, finish, m } => {
                    assert!(finish > start, "{r:?}");
                    assert!(m >= 1);
                }
                other => panic!("{other:?}"),
            }
        }
        // The two co-resident tenants each paid for the shared host
        // core: their measured finishes cannot both equal a solo run.
        let (f0, f1) = match (report.records[0].outcome, report.records[1].outcome) {
            (
                JobOutcome::Offloaded { finish: f0, .. },
                JobOutcome::Offloaded { finish: f1, .. },
            ) => (f0, f1),
            other => panic!("{other:?}"),
        };
        assert_ne!(f0, f1, "serialized marshalling must stagger finishes");
    }

    #[test]
    fn cosimulated_runs_are_deterministic() {
        let stream = jobs(&[
            (0, 1024, 2000),
            (0, 2048, 4000),
            (100, 256, 100_000),
            (500, 4096, 9000),
        ]);
        let a = cosim_engine(8)
            .run(&stream, &mut FifoFirstFit)
            .expect("run");
        let b = cosim_engine(8)
            .run(&stream, &mut FifoFirstFit)
            .expect("run");
        assert_eq!(a, b);
    }

    #[test]
    fn cosimulated_contention_is_attributed_under_scarce_bandwidth() {
        // Starve HBM so concurrent DMA + host operand-preparation
        // traffic queues: the per-job contention attribution must be
        // nonzero for at least one of the co-resident tenants, and it
        // is zero under the solo-run measured backend by construction.
        let mut config = mpsoc_soc::SocConfig::with_clusters(8);
        config.mem_words_per_cycle = 8;
        config.host_prep_words_per_cycle = 4;
        let offloader = mpsoc_offload::Offloader::new(config).expect("soc");
        let mut engine = Engine::new(
            ModelTable::paper_defaults(),
            8,
            ServiceBackend::co_simulated(offloader, 0xBEEF),
        );
        let stream = jobs(&[(0, 2048, 100_000), (0, 2048, 100_000)]);
        let report = engine.run(&stream, &mut FifoFirstFit).expect("run");
        assert_eq!(report.metrics.offloaded, 2);
        let total: u64 = report.records.iter().map(|r| r.contention_cycles).sum();
        assert!(total > 0, "co-residents must observe shared-HBM queueing");
    }

    #[test]
    fn measured_backend_reports_zero_contention() {
        let stream = jobs(&[(0, 2048, 100_000), (0, 2048, 100_000)]);
        let offloader =
            mpsoc_offload::Offloader::new(mpsoc_soc::SocConfig::with_clusters(8)).expect("soc");
        let mut e = Engine::new(
            ModelTable::paper_defaults(),
            8,
            ServiceBackend::measured(offloader, 0xBEEF),
        );
        let report = e.run(&stream, &mut FifoFirstFit).expect("run");
        assert!(report.records.iter().all(|r| r.contention_cycles == 0));
    }

    #[test]
    fn quarantined_clusters_leave_the_allocator_pool() {
        // Two 1-cluster jobs arriving together overlap on a healthy
        // machine; with all but one cluster quarantined they serialize.
        let stream = jobs(&[(0, 1024, 100_000), (0, 1024, 100_000)]);
        let mut degraded = engine(8);
        degraded.quarantine(ClusterMask::range(1, 7));
        assert_eq!(degraded.quarantined().count(), 7);
        let report = degraded.run(&stream, &mut FifoFirstFit).expect("run");
        let (f0, s1) = match (report.records[0].outcome, report.records[1].outcome) {
            (JobOutcome::Offloaded { finish: f0, .. }, JobOutcome::Offloaded { start: s1, .. }) => {
                (f0, s1)
            }
            other => panic!("{other:?}"),
        };
        assert_eq!(s1, f0, "one healthy cluster is a serial server");
    }

    #[test]
    fn degraded_machine_rejections_are_typed() {
        // Feasible on the full 8-cluster machine, infeasible on the 2
        // healthy survivors — and distinguishable from a plain
        // NotEnoughClusters rejection.
        let stream = jobs(&[(0, 1024, 700)]);
        let full = engine(8).run(&stream, &mut FifoFirstFit).expect("run");
        assert_eq!(full.metrics.offloaded, 1);

        let mut degraded = engine(8);
        degraded.quarantine(ClusterMask::range(2, 6));
        let report = degraded.run(&stream, &mut FifoFirstFit).expect("run");
        match report.records[0].outcome {
            JobOutcome::Rejected {
                reason: crate::RejectReason::DegradedMachine { required, healthy },
            } => {
                assert!(required > 2, "required {required}");
                assert_eq!(healthy, 2);
            }
            other => panic!("expected a degraded-machine rejection, got {other:?}"),
        }
    }

    #[test]
    fn quarantine_tolerates_a_fully_dead_machine() {
        // Everything quarantined: offloadable jobs are rejected (or go
        // to the host) instead of panicking in the allocator.
        let stream = jobs(&[(0, 1024, 1000), (0, 64, 100_000)]);
        let mut e = engine(8);
        e.quarantine(ClusterMask::first(8));
        let report = e.run(&stream, &mut FifoFirstFit).expect("run");
        assert_eq!(report.metrics.offloaded, 0);
        assert_eq!(report.metrics.rejected, 1);
        assert_eq!(report.metrics.host_runs, 1);
    }

    #[test]
    fn quarantine_invalidates_measured_solo_timings() {
        let offloader =
            mpsoc_offload::Offloader::new(mpsoc_soc::SocConfig::with_clusters(8)).expect("soc");
        let mut backend = ServiceBackend::measured(offloader, 0xBEEF);
        backend
            .offload_cycles(KernelId::Daxpy, 512, ClusterMask::first(2))
            .expect("offload");
        let cache_len = |b: &ServiceBackend| match b {
            ServiceBackend::Measured { offload_cache, .. } => offload_cache.len(),
            _ => unreachable!(),
        };
        assert_eq!(cache_len(&backend), 1);
        let mut e = Engine::new(ModelTable::paper_defaults(), 8, backend);
        e.quarantine(ClusterMask::single(7));
        assert_eq!(cache_len(&e.backend), 0, "quarantine must drop the cache");
    }

    #[test]
    fn cosimulated_records_carry_observed_faults() {
        // A single transient DMA stall: the job still completes (late),
        // and its record reports the injected fault.
        let mut offloader =
            mpsoc_offload::Offloader::new(mpsoc_soc::SocConfig::with_clusters(8)).expect("soc");
        let mut plan = mpsoc_soc::FaultPlan::with_seed(21);
        plan.dma_stall = mpsoc_soc::SiteSpec::once_at(0);
        plan.dma_stall_cycles = 300;
        offloader.install_faults(plan);
        let mut e = Engine::new(
            ModelTable::paper_defaults(),
            8,
            ServiceBackend::co_simulated(offloader, 0xBEEF),
        );
        let stream = jobs(&[(0, 1024, 100_000)]);
        let report = e.run(&stream, &mut FifoFirstFit).expect("run");
        assert_eq!(report.metrics.offloaded, 1);
        assert_eq!(report.records[0].faults_observed, 1);
        assert_eq!(report.records[0].retries, 0);
    }

    #[test]
    fn cosimulated_corruption_redispatches_and_counts_retries() {
        // A single transient DMA corruption: the CRC flags the result,
        // the engine re-dispatches on the same partition, and the
        // record carries the retry (closing the `retries: 0` gap).
        let mut offloader =
            mpsoc_offload::Offloader::new(mpsoc_soc::SocConfig::with_clusters(8)).expect("soc");
        let mut plan = mpsoc_soc::FaultPlan::with_seed(31);
        plan.dma_corrupt = mpsoc_soc::SiteSpec::once_at(0);
        offloader.install_faults(plan);
        let mut e = Engine::new(
            ModelTable::paper_defaults(),
            8,
            ServiceBackend::co_simulated(offloader, 0xBEEF),
        );
        let stream = jobs(&[(0, 1024, 100_000)]);
        let report = e.run(&stream, &mut FifoFirstFit).expect("run");
        assert_eq!(report.metrics.offloaded, 1);
        assert_eq!(report.records[0].retries, 1);
        assert!(report.records[0].faults_observed >= 1);
        match report.records[0].outcome {
            JobOutcome::Offloaded { start, finish, .. } => {
                assert_eq!(start, 0);
                assert!(finish > 0, "the retried attempt still completes");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn persistent_corruption_auto_quarantines_without_an_explicit_call() {
        // Every DMA burst corrupts: each tenant's cluster accumulates a
        // strike per corrupt completion and crosses the 3-strike
        // threshold mid-stream. `Engine::quarantine` is never called;
        // the closed loop does it all.
        let mut offloader =
            mpsoc_offload::Offloader::new(mpsoc_soc::SocConfig::with_clusters(2)).expect("soc");
        let mut plan = mpsoc_soc::FaultPlan::with_seed(7);
        plan.dma_corrupt = mpsoc_soc::SiteSpec::rate(1.0);
        offloader.install_faults(plan);
        let mut e = Engine::new(
            ModelTable::paper_defaults(),
            2,
            ServiceBackend::co_simulated(offloader, 0xBEEF),
        );
        e.enable_telemetry(4096);
        let stream = jobs(&[(0, 1024, 100_000), (0, 1024, 100_000), (0, 1024, 100_000)]);
        let report = e.run(&stream, &mut FifoFirstFit).expect("run");
        assert_eq!(e.quarantined().count(), 2, "both clusters condemned");
        let events = e.quarantine_events();
        assert_eq!(events.len(), 2);
        assert!(events.iter().all(|ev| ev.strikes >= 3 && ev.at > 0));
        assert!(e
            .telemetry()
            .events()
            .iter()
            .any(|ev| ev.kind.name() == "quarantine"));
        // The two in-flight tenants complete (budget-exhausted results
        // accepted); the queued third is stranded on a dead machine and
        // resolves as a typed degraded rejection.
        assert_eq!(report.metrics.offloaded, 2);
        match report.records[2].outcome {
            JobOutcome::Rejected {
                reason: crate::RejectReason::DegradedMachine { healthy, .. },
            } => assert_eq!(healthy, 0),
            other => panic!("expected a degraded rejection, got {other:?}"),
        }
    }

    #[test]
    fn auto_quarantine_can_be_disabled() {
        let mk = || {
            let mut offloader =
                mpsoc_offload::Offloader::new(mpsoc_soc::SocConfig::with_clusters(2)).expect("soc");
            let mut plan = mpsoc_soc::FaultPlan::with_seed(7);
            plan.dma_corrupt = mpsoc_soc::SiteSpec::rate(1.0);
            offloader.install_faults(plan);
            Engine::new(
                ModelTable::paper_defaults(),
                2,
                ServiceBackend::co_simulated(offloader, 0xBEEF),
            )
        };
        let stream = jobs(&[(0, 1024, 100_000), (0, 1024, 100_000), (0, 1024, 100_000)]);
        let mut e = mk();
        e.set_auto_quarantine(None);
        let report = e.run(&stream, &mut FifoFirstFit).expect("run");
        assert!(e.quarantined().is_empty());
        assert!(e.quarantine_events().is_empty());
        assert_eq!(report.metrics.offloaded, 3, "every job still completes");
    }

    #[test]
    fn wedged_cosimulated_session_is_a_typed_error() {
        // A lost completion credit wedges the tenant's barrier: with no
        // arrival left to advance time, the engine must surface a typed
        // SessionStalled error instead of panicking.
        let mut offloader =
            mpsoc_offload::Offloader::new(mpsoc_soc::SocConfig::with_clusters(8)).expect("soc");
        let mut plan = mpsoc_soc::FaultPlan::with_seed(23);
        plan.credit_loss = mpsoc_soc::SiteSpec::once_at(0);
        offloader.install_faults(plan);
        let mut e = Engine::new(
            ModelTable::paper_defaults(),
            8,
            ServiceBackend::co_simulated(offloader, 0xBEEF),
        );
        let stream = jobs(&[(0, 1024, 100_000)]);
        let err = e.run(&stream, &mut FifoFirstFit).unwrap_err();
        match err {
            SchedError::SessionStalled { in_flight } => assert_eq!(in_flight, 1),
            other => panic!("expected SessionStalled, got {other}"),
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let stream = jobs(&[
            (0, 1024, 700),
            (100, 2048, 2000),
            (100, 256, 100_000),
            (500, 4096, 3000),
        ]);
        let a = engine(8).run(&stream, &mut FifoFirstFit).expect("run");
        let b = engine(8).run(&stream, &mut FifoFirstFit).expect("run");
        assert_eq!(a, b);
    }
}
