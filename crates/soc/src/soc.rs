//! The assembled SoC and its event-driven offload execution.
//!
//! The substrate is a **concurrent-job SoC**: any number of in-flight
//! jobs on disjoint [`ClusterMask`] partitions share the one NoC switch
//! tree, the HBM bandwidth and atomic units, and the host's credit/IRQ
//! path. A session is opened with [`Soc::begin_jobs`], jobs enter via
//! [`Soc::submit_job`] and run concurrently in virtual time under
//! [`Soc::advance_jobs`], which delivers per-job [`JobCompletion`]
//! events. The host core is re-entrant but serial: marshalling,
//! dispatch and ISR work from different jobs interleave one at a time
//! (a job waiting on an IRQ releases the host; a spin-polling job holds
//! it, faithfully to a spinning CVA6). Cluster phases of different jobs
//! proceed truly concurrently, so NoC stalls, HBM queueing and AMO
//! serialization between tenants *emerge* from the shared resource
//! models and are attributed per job in [`ContentionReport`]s.
//!
//! The legacy single-job API, [`Soc::run_offload`], is a thin wrapper
//! over the same machinery (one submission at cycle 0, pumped to
//! quiescence) and is cycle-for-cycle and event-for-event identical to
//! the historical blocking implementation.

use std::collections::VecDeque;

use mpsoc_faults::{FaultInjector, FaultKind, FaultPlan, FaultStats};
use mpsoc_isa::{Interpreter, MemoryPort, PortError};
use mpsoc_mem::{Addr, ClusterReg, MainMemory, MemoryMap, Tcdm};
use mpsoc_noc::{ClusterMask, Interconnect};
use mpsoc_sim::stats::StatsRegistry;
use mpsoc_sim::trace::Tracer;
use mpsoc_sim::{Cycle, EventQueue, Scheduler, Simulate};
use mpsoc_telemetry::{EventKind, EventTrace, PhaseBreakdown, Unit};

use crate::cluster::ClusterState;
use crate::energy::EnergyActivity;
use crate::host::{HostOp, HostState, HostStatus};
use crate::{
    ClusterJob, ClusterPhase, ClusterTiming, HostProgram, OffloadOutcome, PhaseTimestamps,
    SocConfig, SocError,
};

/// Identifier of a job within a concurrent-SoC session.
///
/// IDs are assigned by [`Soc::submit_job`] starting at 1; ID 0 is
/// reserved for the legacy single-job path and renders as "untagged" in
/// telemetry, keeping single-job traces byte-identical.
pub type JobId = u64;

/// Simulation events of the SoC.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SocEvent {
    /// The host executes the next runtime op of the job in `slot`.
    HostStep {
        /// Job-slot index of the program being stepped.
        slot: usize,
    },
    /// One iteration of the software-barrier polling loop of `slot`.
    HostPoll {
        /// Job-slot index of the polling program.
        slot: usize,
    },
    /// The credit-counter completion interrupt for `slot` reaches the
    /// host.
    HostIrq {
        /// Job-slot index the interrupt belongs to.
        slot: usize,
    },
    /// A posted store arrives at a cluster mailbox register.
    MailboxWrite {
        /// Target cluster.
        cluster: usize,
        /// Target register.
        reg: ClusterReg,
        /// Stored value.
        value: u64,
    },
    /// The cluster controller finished waking from the doorbell.
    ClusterWake {
        /// Cluster index.
        cluster: usize,
    },
    /// The cluster fetched and decoded the job descriptor.
    ClusterDesc {
        /// Cluster index.
        cluster: usize,
    },
    /// The cluster's DMA engine pumps its next burst.
    DmaBurst {
        /// Cluster index.
        cluster: usize,
    },
    /// A cluster DMA task (one stage, one direction) finished.
    ClusterDmaTaskDone {
        /// Cluster index.
        cluster: usize,
        /// Pipeline stage index.
        stage: usize,
        /// Transfer direction.
        dir: DmaDirection,
    },
    /// All worker cores of the cluster halted for one stage.
    ClusterComputeDone {
        /// Cluster index.
        cluster: usize,
        /// Pipeline stage index.
        stage: usize,
    },
    /// A completion credit arrives at the credit-counter unit.
    CreditArrive {
        /// Originating cluster.
        cluster: usize,
    },
    /// A completion AMO arrives at the main-memory atomic unit.
    BarrierArrive {
        /// Originating cluster.
        cluster: usize,
        /// Barrier counter address.
        addr: Addr,
    },
}

/// Adapts a cluster TCDM to the core interpreter's [`MemoryPort`].
struct TcdmPort<'a> {
    tcdm: &'a mut Tcdm,
}

impl MemoryPort for TcdmPort<'_> {
    fn load(&mut self, addr: u64) -> Result<f64, PortError> {
        if addr % 8 != 0 {
            return Err(PortError { addr });
        }
        self.tcdm.read_f64(addr / 8).map_err(|_| PortError { addr })
    }

    fn store(&mut self, addr: u64, value: f64) -> Result<(), PortError> {
        if addr % 8 != 0 {
            return Err(PortError { addr });
        }
        self.tcdm
            .write_f64(addr / 8, value)
            .map_err(|_| PortError { addr })
    }

    fn grant(&mut self, addr: u64, at: Cycle) -> Cycle {
        self.tcdm.access(addr / 8, at)
    }
}

/// Direction of a cluster DMA task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DmaDirection {
    /// Main memory → TCDM.
    In,
    /// TCDM → main memory.
    Out,
}

/// Per-cluster DMA chain state.
#[derive(Debug, Clone, Copy)]
struct DmaChain {
    stage: usize,
    dir: DmaDirection,
    remaining: u64,
    resume_slot: u64,
}

/// Shared-resource interference charged to one job: the cycles this
/// job's own requests spent queued behind *other* traffic on the NoC
/// injection port, the HBM bandwidth queue and the memory atomic unit.
///
/// In a single-job run these are all zero (or whatever the job inflicts
/// on itself across its own clusters); under co-residency they grow
/// with the tenants sharing the machine — the quantity the solo-run
/// service model cannot see.
#[derive(Debug, Clone, Copy, Default, PartialEq, serde::Serialize)]
pub struct ContentionReport {
    /// Cycles the host stalled injecting this job's dispatch stores.
    pub noc_stall_cycles: u64,
    /// Cycles this job's HBM requests (DMA bursts and host-side
    /// marshalling traffic) queued behind already-reserved bandwidth.
    pub hbm_queue_cycles: f64,
    /// Cycles this job's barrier AMOs waited for the atomic unit.
    pub amo_wait_cycles: u64,
}

impl ContentionReport {
    /// Total interference in whole cycles (NoC stall + HBM queue + AMO
    /// wait), the scalar the scheduler reports per job.
    pub fn total_cycles(&self) -> u64 {
        self.noc_stall_cycles + self.hbm_queue_cycles.round() as u64 + self.amo_wait_cycles
    }
}

/// Delivered when a submitted job's host program reaches
/// [`HostOp::End`]: the per-job outcome plus session-level attribution.
#[derive(Debug, Clone)]
pub struct JobCompletion {
    /// The job's session ID.
    pub job: JobId,
    /// The partition it ran on.
    pub mask: ClusterMask,
    /// When the job was submitted (absolute session time).
    pub submitted_at: Cycle,
    /// When its host program ended (absolute session time).
    pub finished_at: Cycle,
    /// Cycles the job spent waiting for the serial host core while
    /// other jobs held it (admission queueing, ISR serialization).
    pub host_wait_cycles: u64,
    /// Shared-resource interference attributed to this job.
    pub contention: ContentionReport,
    /// The per-job outcome; timestamps are relative to `submitted_at`,
    /// so a solo job's outcome reads exactly like [`Soc::run_offload`]'s.
    pub outcome: OffloadOutcome,
    /// Bitmask of this job's clusters whose DMA engine flagged a CRC
    /// mismatch on a transferred burst — the *architecturally visible*
    /// corruption signal a runtime is allowed to act on. Zero on every
    /// fault-free run.
    pub corrupt_clusters: u64,
    /// Number of injected faults attributed to this job (diagnostic
    /// ground truth for reporting; recovery logic must key off
    /// observable signals — `corrupt_clusters`, missing completions —
    /// never off this count).
    pub faults_injected: u64,
}

/// What [`Soc::advance_jobs`] did.
#[derive(Debug)]
pub enum SessionProgress {
    /// A job completed (at `completion.finished_at` ≤ the horizon);
    /// events past that instant have not been processed yet.
    Completed(Box<JobCompletion>),
    /// Every event at or before the horizon was processed; jobs are
    /// still in flight.
    Horizon,
    /// The event queue drained: nothing is running or pending.
    Idle,
}

/// One in-flight (or finished) job of the current session.
#[derive(Debug)]
struct JobSlot {
    id: JobId,
    mask: ClusterMask,
    host: HostState,
    irq_pending: bool,
    credit: crate::CreditCounter,
    phases: PhaseTimestamps,
    activity: EnergyActivity,
    contention: ContentionReport,
    submitted_at: Cycle,
    /// Earliest cycle the job may (re)acquire the host.
    not_before: Cycle,
    host_wait_cycles: u64,
    /// TCDM conflict counters of `mask`'s clusters at submission, so the
    /// job is charged only its own conflicts when clusters are reused.
    conflict_base: Vec<u64>,
    /// Clusters whose DMA CRC flagged corruption (see [`JobCompletion`]).
    corrupt_clusters: u64,
    /// Injected faults attributed to this job so far.
    faults_injected: u64,
    done: bool,
}

/// The simulated heterogeneous MPSoC.
///
/// Construct with [`Soc::new`], load operand data through
/// [`Soc::main_mut`], bind one [`ClusterJob`] per selected cluster with
/// [`Soc::bind_job`], then execute a [`HostProgram`] with
/// [`Soc::run_offload`]. See the crate-level example.
#[derive(Debug)]
pub struct Soc {
    config: SocConfig,
    map: MemoryMap,
    main: MainMemory,
    noc: Interconnect,
    clusters: Vec<ClusterState>,
    tcdms: Vec<Tcdm>,
    dma: Vec<Option<DmaChain>>,
    // --- concurrent-job session state ---
    queue: EventQueue<SocEvent>,
    session_now: Cycle,
    events_delivered: u64,
    jobs: Vec<JobSlot>,
    cluster_owner: Vec<Option<usize>>,
    host_active: Option<usize>,
    host_ready: VecDeque<usize>,
    next_job_id: JobId,
    completions: VecDeque<JobCompletion>,
    session_tcdm_conflicts: u64,
    stats_folded: bool,
    stats: StatsRegistry,
    tracer: Tracer,
    telemetry: EventTrace,
    faults: FaultInjector,
    fatal: Option<SocError>,
}

impl Soc {
    /// Builds a SoC from a configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SocError::Config`] if the configuration is inconsistent.
    pub fn new(config: SocConfig) -> Result<Self, SocError> {
        config
            .validate()
            .map_err(|reason| SocError::Config { reason })?;
        let map = MemoryMap::with_tcdm_words(config.clusters, config.main_words, config.tcdm_words);
        let main = MainMemory::new(
            map.main_base(),
            config.main_words,
            config.mem_words_per_cycle,
            Cycle::new(config.mem_latency),
            Cycle::new(config.amo_service),
        );
        let noc = Interconnect::new(config.noc, config.clusters);
        let tcdms = (0..config.clusters)
            .map(|_| Tcdm::new(config.tcdm_words, config.tcdm_banks, config.bank_mode))
            .collect();
        let clusters = vec![ClusterState::default(); config.clusters];
        let dma = vec![None; config.clusters];
        let cluster_owner = vec![None; config.clusters];
        Ok(Soc {
            config,
            map,
            main,
            noc,
            clusters,
            tcdms,
            dma,
            queue: EventQueue::new(),
            session_now: Cycle::ZERO,
            events_delivered: 0,
            jobs: Vec::new(),
            cluster_owner,
            host_active: None,
            host_ready: VecDeque::new(),
            next_job_id: 1,
            completions: VecDeque::new(),
            session_tcdm_conflicts: 0,
            stats_folded: false,
            stats: StatsRegistry::new(),
            tracer: Tracer::disabled(),
            telemetry: EventTrace::disabled(),
            faults: FaultInjector::noop(),
            fatal: None,
        })
    }

    /// The configuration in effect.
    pub fn config(&self) -> &SocConfig {
        &self.config
    }

    /// The SoC address map.
    pub fn map(&self) -> &MemoryMap {
        &self.map
    }

    /// Shared access to main memory (inspect results after an offload).
    pub fn main(&self) -> &MainMemory {
        &self.main
    }

    /// Mutable access to main memory (load operands before an offload).
    pub fn main_mut(&mut self) -> &mut MainMemory {
        &mut self.main
    }

    /// Collected statistics of the last offload.
    pub fn stats(&self) -> &StatsRegistry {
        &self.stats
    }

    /// Enables event tracing with the given record capacity.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.tracer = Tracer::enabled(capacity);
    }

    /// The trace collected during the last offload.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Enables typed-event telemetry with the given event capacity.
    ///
    /// When disabled (the default) every recording site is a single
    /// branch, so simulated timing and results are byte-identical with
    /// and without telemetry.
    pub fn enable_telemetry(&mut self, capacity: usize) {
        self.telemetry = EventTrace::enabled(capacity);
    }

    /// The typed-event trace collected during the last offload (empty
    /// unless [`Soc::enable_telemetry`] was called).
    pub fn telemetry(&self) -> &EventTrace {
        &self.telemetry
    }

    /// Installs a fault-injection plan, distributing its sites to the
    /// hardware points they strike: NoC outage windows to the
    /// interconnect, AMO drops to main memory's atomic unit, and the
    /// remaining sites to the SoC's own dispatch/wake/credit/DMA hooks.
    ///
    /// A [`FaultPlan::none`] plan (the default) leaves every hook a
    /// single untaken branch: timing, results and artifacts are
    /// byte-identical to a build without fault injection.
    pub fn install_faults(&mut self, plan: FaultPlan) {
        self.noc.set_outages(plan.noc_outages.clone());
        self.main.set_amo_faults(plan.site(FaultKind::AmoDrop));
        self.faults = FaultInjector::new(plan);
    }

    /// The installed fault injector (plan, ground-truth records,
    /// per-kind counts).
    pub fn faults(&self) -> &FaultInjector {
        &self.faults
    }

    /// Aggregated injected-fault counts across every hardware point,
    /// including the sites owned by the interconnect (NoC outages) and
    /// main memory (AMO drops).
    pub fn fault_stats(&self) -> FaultStats {
        let mut stats = self.faults.stats();
        stats.noc_outage += self.noc.outage_deferrals();
        stats.amo_drop += self.main.amo_drops();
        stats
    }

    /// Whether `cluster` posted its completion signal for the job it is
    /// (or was last) running — the architecturally observable signal a
    /// watchdog uses to attribute a lost completion to the cluster that
    /// went dark.
    pub fn cluster_completed(&self, cluster: usize) -> bool {
        self.clusters[cluster].completed
    }

    /// Records a runtime-level recovery event (watchdog expiry,
    /// re-dispatch, quarantine) on the host telemetry track, tagged with
    /// the job it concerns. No-op while telemetry is disabled.
    pub fn record_recovery_event(&mut self, at: Cycle, kind: EventKind, job: JobId, arg: u64) {
        self.telemetry.set_job(job);
        self.telemetry.instant(at, Unit::Host, kind, arg);
    }

    /// Rolls the fault die for `kind` at `cluster`; on a strike records
    /// it everywhere it is observable (injector log, stats registry,
    /// telemetry, the owning job's diagnostic counter) and returns
    /// `true`. Disarmed sites return `false` on a single branch.
    fn fault_strikes(&mut self, at: Cycle, kind: FaultKind, cluster: usize) -> bool {
        let job = self.owner_of(cluster).map_or(0, |s| self.jobs[s].id);
        if !self.faults.fire(kind, at, Some(cluster), job) {
            return false;
        }
        self.log_fault(at, kind, cluster);
        true
    }

    /// Rolls the per-cluster flaky-DMA die for one burst on `cluster`
    /// (armed only for clusters in the plan's `flaky_clusters` mask);
    /// recorded exactly like a machine-wide DMA corruption strike.
    fn flaky_strikes(&mut self, at: Cycle, cluster: usize) -> bool {
        let job = self.owner_of(cluster).map_or(0, |s| self.jobs[s].id);
        if !self.faults.flaky_fire(at, cluster, job) {
            return false;
        }
        self.log_fault(at, FaultKind::DmaCorrupt, cluster);
        true
    }

    /// Records a fault whose decision was made by the plan itself (a
    /// statically dead cluster) rather than a per-occurrence die roll.
    fn note_fault(&mut self, at: Cycle, kind: FaultKind, cluster: usize) {
        let job = self.owner_of(cluster).map_or(0, |s| self.jobs[s].id);
        self.faults.note(kind, at, Some(cluster), job);
        self.log_fault(at, kind, cluster);
    }

    fn log_fault(&mut self, at: Cycle, kind: FaultKind, cluster: usize) {
        self.stats.incr(&format!("faults.{}", kind.name()));
        self.telemetry.instant(
            at,
            Unit::Cluster(cluster as u32),
            EventKind::FaultInject,
            kind as u64,
        );
        if let Some(slot) = self.owner_of(cluster) {
            self.jobs[slot].faults_injected += 1;
        }
    }

    /// Installs the job `cluster` will execute when its doorbell rings.
    ///
    /// # Panics
    ///
    /// Panics if `cluster` is out of range.
    pub fn bind_job(&mut self, cluster: usize, job: ClusterJob) {
        self.clusters[cluster].job = Some(job);
    }

    fn desc_fetch_cycles(&self) -> u64 {
        // Descriptor reads are small and served by a shared cache at the
        // tree root: constant latency, no bandwidth-queue serialization
        // (see DESIGN.md, "Calibration targets").
        self.noc.config().hop_latency.as_u64() * u64::from(self.noc.levels()) * 2
            + self.config.mem_latency
            + self
                .config
                .descriptor_words
                .div_ceil(self.config.mem_words_per_cycle)
    }

    fn trace(&mut self, at: Cycle, unit: &str, msg: impl Into<String>) {
        self.tracer.record(at, unit, msg);
    }

    fn fail(&mut self, error: SocError) {
        if self.fatal.is_none() {
            self.fatal = Some(error);
        }
    }

    /// The job slot currently owning `cluster`, if any.
    fn owner_of(&self, cluster: usize) -> Option<usize> {
        self.cluster_owner[cluster]
    }

    /// The HBM queueing delay (in cycles) a request entering at
    /// bandwidth slot `min_slot` is about to pay behind already-reserved
    /// traffic — the per-request quantity `contention.hbm.queue_cycles`
    /// aggregates, computed *before* acquiring so it can be attributed
    /// to the requesting job.
    fn hbm_queue_delay_from(&self, min_slot: u64) -> f64 {
        let free = self.main.next_free_bandwidth_slot();
        if free > min_slot {
            (free - min_slot) as f64 / self.config.mem_words_per_cycle as f64
        } else {
            0.0
        }
    }

    /// Starts one DMA task (one stage, one direction) on `cluster`'s
    /// engine; data is moved eagerly (the timing model alone decides
    /// *when* it completes).
    fn start_dma_task(
        &mut self,
        sched: &mut Scheduler<SocEvent>,
        at: Cycle,
        cluster: usize,
        stage: usize,
        dir: DmaDirection,
    ) -> Result<(), SocError> {
        let Some(job) = self.clusters[cluster].job.as_ref() else {
            return Err(SocError::MissingJob { cluster });
        };
        let transfers = match dir {
            DmaDirection::In => job.stages[stage].dma_in.clone(),
            DmaDirection::Out => job.stages[stage].dma_out.clone(),
        };
        let mut total = 0;
        for t in &transfers {
            match dir {
                DmaDirection::In => {
                    self.tcdms[cluster].dma_in(
                        self.main.store(),
                        t.main_addr,
                        t.local_word,
                        t.words,
                    )?;
                }
                DmaDirection::Out => {
                    let tcdm = &self.tcdms[cluster];
                    tcdm.dma_out(self.main.store_mut(), t.local_word, t.main_addr, t.words)?;
                }
            }
            total += t.words;
        }
        if let Some(slot) = self.owner_of(cluster) {
            self.jobs[slot].activity.dma_words += total;
        }
        if total > 0
            && (self.fault_strikes(at, FaultKind::DmaCorrupt, cluster)
                || self.flaky_strikes(at, cluster))
        {
            // A burst took a bit flip in flight. The engine's CRC check
            // flags the transfer (the observable signal recovery acts
            // on) but the corrupted data still lands, so a runtime that
            // ignores the flag computes a wrong result.
            let t = &transfers[0];
            match dir {
                DmaDirection::In => {
                    let w = self.tcdms[cluster].read_f64(t.local_word)?;
                    self.tcdms[cluster]
                        .write_f64(t.local_word, f64::from_bits(w.to_bits() ^ (1 << 42)))?;
                }
                DmaDirection::Out => {
                    let w = self.main.store().read_u64(t.main_addr)?;
                    self.main
                        .store_mut()
                        .write_u64(t.main_addr, w ^ (1 << 42))?;
                }
            }
            if let Some(slot) = self.owner_of(cluster) {
                self.jobs[slot].corrupt_clusters |= 1 << cluster;
            }
        }
        if total == 0 {
            sched.schedule_at(
                at,
                SocEvent::ClusterDmaTaskDone {
                    cluster,
                    stage,
                    dir,
                },
            );
            return Ok(());
        }
        self.dma[cluster] = Some(DmaChain {
            stage,
            dir,
            remaining: total,
            resume_slot: 0, // initialized on the first burst
        });
        sched.schedule_at(at, SocEvent::DmaBurst { cluster });
        Ok(())
    }

    fn handle_dma_burst(&mut self, sched: &mut Scheduler<SocEvent>, now: Cycle, cluster: usize) {
        let Some(mut chain) = self.dma[cluster] else {
            return;
        };
        let width = self.config.dma_words_per_cycle;
        let burst = chain.remaining.min(width);
        let min_slot = if chain.resume_slot == 0 {
            self.main.bandwidth_slot_of(now)
        } else {
            chain.resume_slot.max(self.main.bandwidth_slot_of(now))
        };
        // Attribute the queueing this burst is about to pay (behind any
        // other job's reserved bandwidth) to the cluster's owner.
        let queued = self.hbm_queue_delay_from(min_slot);
        if queued > 0.0 {
            if let Some(slot) = self.owner_of(cluster) {
                self.jobs[slot].contention.hbm_queue_cycles += queued;
            }
            self.telemetry.instant(
                now,
                Unit::MainMem,
                EventKind::HbmQueue,
                queued.round() as u64,
            );
        }
        let (end_slot, done) = self.main.acquire_bandwidth_slots(min_slot, burst);
        chain.resume_slot = end_slot;
        chain.remaining -= burst;
        if chain.remaining > 0 {
            self.dma[cluster] = Some(chain);
            sched.schedule_at(
                done.max(now + Cycle::new(1)),
                SocEvent::DmaBurst { cluster },
            );
        } else {
            self.dma[cluster] = None;
            let mut finish = done + Cycle::new(self.config.mem_latency);
            if self.fault_strikes(now, FaultKind::DmaStall, cluster) {
                // The engine wedged mid-burst and needed its internal
                // timeout to recover: the task completes late but intact.
                finish += Cycle::new(self.faults.dma_stall_cycles());
            }
            sched.schedule_at(
                finish,
                SocEvent::ClusterDmaTaskDone {
                    cluster,
                    stage: chain.stage,
                    dir: chain.dir,
                },
            );
        }
    }

    /// Runs every worker core of `cluster` over `stage`'s programs from
    /// `start`; returns the latest finish time.
    fn run_cores(&mut self, start: Cycle, cluster: usize, stage: usize) -> Result<Cycle, SocError> {
        let Some(job) = self.clusters[cluster].job.clone() else {
            return Err(SocError::MissingJob { cluster });
        };
        let interpreter = Interpreter::with_timing(self.config.core_timing);
        let mut latest = start;
        for (core, program) in job.stages[stage].programs.iter().enumerate() {
            let mut port = TcdmPort {
                tcdm: &mut self.tcdms[cluster],
            };
            let report = interpreter
                .run_from(program, start, &mut port)
                .map_err(|error| SocError::Core {
                    cluster,
                    core,
                    error,
                })?;
            latest = latest.max(report.finish);
            if let Some(slot) = self.owner_of(cluster) {
                self.jobs[slot].activity.core_ops += report.retired;
            }
            self.clusters[cluster].core_reports.push(report);
        }
        Ok(latest)
    }

    /// The cluster pipeline scheduler: starts whatever DMA task and
    /// compute stage are ready, and posts the completion signal once
    /// every stage has drained.
    ///
    /// DMA policy: one engine, FCFS over ready tasks, earliest stage
    /// first; a ready DMA-out wins a tie against a later stage's DMA-in
    /// (draining frees the stage buffer).
    fn cluster_dispatch(&mut self, sched: &mut Scheduler<SocEvent>, at: Cycle, cluster: usize) {
        let stage_count = self.clusters[cluster].stages.len();

        // 1. DMA engine.
        if !self.clusters[cluster].dma_busy {
            // In(k) may only start once the buffer it writes (parity
            // k mod 2) is fully drained: stage k−2 computed *and* wrote
            // back. This is the double-buffering hazard gate.
            let stages = &self.clusters[cluster].stages;
            let next_in = stages.iter().enumerate().position(|(k, s)| {
                !s.in_started && (k < 2 || (stages[k - 2].compute_done && stages[k - 2].out_done))
            });
            let next_out = stages.iter().position(|s| s.compute_done && !s.out_started);
            let choice = match (next_in, next_out) {
                (Some(i), Some(o)) => Some(if o <= i {
                    (o, DmaDirection::Out)
                } else {
                    (i, DmaDirection::In)
                }),
                (Some(i), None) => Some((i, DmaDirection::In)),
                (None, Some(o)) => Some((o, DmaDirection::Out)),
                (None, None) => None,
            };
            if let Some((stage, dir)) = choice {
                {
                    let progress = &mut self.clusters[cluster].stages[stage];
                    match dir {
                        DmaDirection::In => progress.in_started = true,
                        DmaDirection::Out => progress.out_started = true,
                    }
                }
                self.clusters[cluster].dma_busy = true;
                let kind = match dir {
                    DmaDirection::In => EventKind::DmaIn,
                    DmaDirection::Out => EventKind::DmaOut,
                };
                self.clusters[cluster].dma_span =
                    self.telemetry
                        .begin(at, Unit::ClusterDma(cluster as u32), kind);
                if let Err(e) = self.start_dma_task(sched, at, cluster, stage, dir) {
                    self.fail(e);
                    return;
                }
            }
        }

        // 2. Worker cores: stages compute in order, each gated on its
        //    DMA-in.
        if !self.clusters[cluster].compute_busy {
            let next = self.clusters[cluster]
                .stages
                .iter()
                .position(|s| !s.compute_started);
            if let Some(stage) = next {
                if self.clusters[cluster].stages[stage].in_done {
                    self.clusters[cluster].stages[stage].compute_started = true;
                    self.clusters[cluster].compute_busy = true;
                    self.clusters[cluster].phase = ClusterPhase::Computing;
                    let start = at + Cycle::new(self.config.core_start_cycles);
                    self.clusters[cluster].compute_span = self.telemetry.begin(
                        start,
                        Unit::ClusterCores(cluster as u32),
                        EventKind::Compute,
                    );
                    let conflicts_before = self.tcdms[cluster].conflicts();
                    match self.run_cores(start, cluster, stage) {
                        Ok(finish) => {
                            let conflicts = self.tcdms[cluster].conflicts() - conflicts_before;
                            if conflicts > 0 {
                                self.telemetry.instant(
                                    start,
                                    Unit::ClusterCores(cluster as u32),
                                    EventKind::TcdmConflict,
                                    conflicts,
                                );
                            }
                            sched.schedule_at(
                                finish,
                                SocEvent::ClusterComputeDone { cluster, stage },
                            );
                        }
                        Err(e) => {
                            self.fail(e);
                            return;
                        }
                    }
                }
            }
        }

        // 3. Completion.
        let all_done = stage_count > 0 && self.clusters[cluster].stages.iter().all(|s| s.out_done);
        if all_done && !self.clusters[cluster].completed {
            self.clusters[cluster].completed = true;
            self.clusters[cluster].phase = ClusterPhase::Done;
            let Some(job) = self.clusters[cluster].job.as_ref() else {
                self.fail(SocError::MissingJob { cluster });
                return;
            };
            match job.completion {
                crate::CompletionSignal::Credit => {
                    let arrive = self.noc.credit_upstream(at, cluster);
                    sched.schedule_at(arrive, SocEvent::CreditArrive { cluster });
                }
                crate::CompletionSignal::Barrier { addr } => {
                    let arrive = self.noc.cluster_upstream(at, cluster);
                    sched.schedule_at(arrive, SocEvent::BarrierArrive { cluster, addr });
                }
            }
        }
    }

    /// Charges the HBM queueing delay a host-side transfer entering at
    /// `at` is about to pay to job `slot` — the same per-request quantity
    /// [`MainMemory::transfer`] folds into `contention.hbm.queue_cycles`,
    /// computed *before* acquiring so it can be attributed.
    fn charge_host_hbm_queue(&mut self, slot: usize, at: Cycle, words: u64) {
        if words == 0 {
            return;
        }
        let queued = self.hbm_queue_delay_from(self.main.bandwidth_slot_of(at));
        if queued > 0.0 {
            self.jobs[slot].contention.hbm_queue_cycles += queued;
        }
    }

    /// Hands the serial host core to `slot`; it resumes at `now` or its
    /// `not_before`, whichever is later, and the difference is charged as
    /// host-wait (time spent queued behind other tenants' host phases).
    fn activate_host(&mut self, sched: &mut Scheduler<SocEvent>, now: Cycle, slot: usize) {
        let start = now.max(self.jobs[slot].not_before);
        self.jobs[slot].host_wait_cycles +=
            start.saturating_sub(self.jobs[slot].not_before).as_u64();
        self.host_active = Some(slot);
        sched.schedule_at(start, SocEvent::HostStep { slot });
    }

    /// Releases the serial host core from `slot` and wakes the next
    /// queued job, if any.
    fn release_host(&mut self, sched: &mut Scheduler<SocEvent>, now: Cycle, slot: usize) {
        debug_assert_eq!(self.host_active, Some(slot));
        self.host_active = None;
        if let Some(next) = self.host_ready.pop_front() {
            self.activate_host(sched, now, next);
        }
    }

    fn host_step(&mut self, sched: &mut Scheduler<SocEvent>, now: Cycle, slot: usize) {
        let Some(op) = self.jobs[slot].host.current().cloned() else {
            let pc = self.jobs[slot].host.pc;
            self.fail(SocError::HostStalled { pc });
            return;
        };
        match op {
            HostOp::Compute(cycles) => {
                let job = &mut self.jobs[slot];
                job.host.pc += 1;
                job.host.busy_cycles += cycles;
                sched.schedule_at(now + Cycle::new(cycles), SocEvent::HostStep { slot });
            }
            HostOp::WriteWords { addr, values } => {
                let count = values.len() as u64;
                {
                    let job = &mut self.jobs[slot];
                    job.host.pc += 1;
                    job.host.busy_cycles += count;
                    job.activity.mem_words += count;
                }
                let next = now + Cycle::new(count);
                for (i, v) in values.iter().enumerate() {
                    if let Err(e) = self
                        .main
                        .store_mut()
                        .write_u64(addr.add_words(i as u64), *v)
                    {
                        self.fail(e.into());
                        return;
                    }
                }
                self.charge_host_hbm_queue(slot, now, count);
                self.main.transfer(now, count);
                sched.schedule_at(next, SocEvent::HostStep { slot });
            }
            HostOp::PrepareOperands { words } => {
                let cycles = words.div_ceil(self.config.host_prep_words_per_cycle);
                {
                    let job = &mut self.jobs[slot];
                    job.host.pc += 1;
                    job.host.busy_cycles += cycles;
                    job.activity.mem_words += words;
                }
                self.charge_host_hbm_queue(slot, now, words);
                self.main.transfer(now, words);
                sched.schedule_at(now + Cycle::new(cycles), SocEvent::HostStep { slot });
            }
            HostOp::StoreMailbox {
                cluster,
                reg,
                value,
            } => {
                self.jobs[slot].host.pc += 1;
                let d = self.noc.host_unicast(now, cluster);
                self.jobs[slot].activity.noc_stores += 1;
                self.telemetry
                    .instant(now, Unit::Host, EventKind::DispatchStart, cluster as u64);
                let stall = d
                    .injected
                    .saturating_sub(now + self.noc.config().inject_cycles);
                if stall > Cycle::ZERO {
                    self.jobs[slot].contention.noc_stall_cycles += stall.as_u64();
                    self.telemetry
                        .instant(now, Unit::Noc, EventKind::NocStall, stall.as_u64());
                }
                if !self.fault_strikes(d.delivered, FaultKind::DispatchDrop, cluster) {
                    sched.schedule_at(
                        d.delivered,
                        SocEvent::MailboxWrite {
                            cluster,
                            reg,
                            value,
                        },
                    );
                    if self.fault_strikes(d.delivered, FaultKind::DispatchDup, cluster) {
                        sched.schedule_at(
                            d.delivered + Cycle::new(1),
                            SocEvent::MailboxWrite {
                                cluster,
                                reg,
                                value,
                            },
                        );
                    }
                }
                sched.schedule_at(d.injected, SocEvent::HostStep { slot });
            }
            HostOp::MulticastMailbox { mask, reg, value } => {
                self.jobs[slot].host.pc += 1;
                let mc = self.noc.host_multicast(now, mask);
                self.jobs[slot].activity.noc_stores += mc.delivered.len() as u64;
                self.telemetry.instant(
                    now,
                    Unit::Host,
                    EventKind::DispatchStart,
                    mc.delivered.len() as u64,
                );
                let stall = mc
                    .injected
                    .saturating_sub(now + self.noc.config().inject_cycles);
                if stall > Cycle::ZERO {
                    self.jobs[slot].contention.noc_stall_cycles += stall.as_u64();
                    self.telemetry
                        .instant(now, Unit::Noc, EventKind::NocStall, stall.as_u64());
                }
                for (cluster, at) in &mc.delivered {
                    if self.fault_strikes(*at, FaultKind::DispatchDrop, *cluster) {
                        continue;
                    }
                    sched.schedule_at(
                        *at,
                        SocEvent::MailboxWrite {
                            cluster: *cluster,
                            reg,
                            value,
                        },
                    );
                    if self.fault_strikes(*at, FaultKind::DispatchDup, *cluster) {
                        sched.schedule_at(
                            *at + Cycle::new(1),
                            SocEvent::MailboxWrite {
                                cluster: *cluster,
                                reg,
                                value,
                            },
                        );
                    }
                }
                sched.schedule_at(mc.injected, SocEvent::HostStep { slot });
            }
            HostOp::CreditArm { threshold } => {
                let job = &mut self.jobs[slot];
                job.host.pc += 1;
                job.credit.arm(threshold);
                job.irq_pending = false;
                job.activity.sync_ops += 1;
                self.telemetry
                    .instant(now, Unit::CreditUnit, EventKind::CreditArm, threshold);
                let injected = now + self.noc.config().inject_cycles;
                sched.schedule_at(injected, SocEvent::HostStep { slot });
            }
            HostOp::StoreUncachedMain { addr, value } => {
                self.jobs[slot].host.pc += 1;
                if let Err(e) = self.main.store_mut().write_u64(addr, value) {
                    self.fail(e.into());
                    return;
                }
                self.charge_host_hbm_queue(slot, now, 1);
                self.main.transfer(now, 1);
                self.jobs[slot].activity.mem_words += 1;
                let injected = now + self.noc.config().inject_cycles;
                sched.schedule_at(injected, SocEvent::HostStep { slot });
            }
            HostOp::PollUntilEq { .. } => {
                // A spinning CVA6 holds the core: the host stays occupied
                // for the whole polling loop, faithful to the baseline.
                self.jobs[slot].host.status = HostStatus::Polling;
                sched.schedule_at(now, SocEvent::HostPoll { slot });
            }
            HostOp::WaitIrq => {
                let job = &mut self.jobs[slot];
                if job.irq_pending {
                    job.irq_pending = false;
                    job.host.pc += 1;
                    sched.schedule_at(now, SocEvent::HostStep { slot });
                } else {
                    // Parking on the IRQ frees the serial host core for
                    // whichever job is queued behind it.
                    job.host.status = HostStatus::WaitingIrq;
                    self.release_host(sched, now, slot);
                }
            }
            HostOp::End => {
                self.jobs[slot].host.status = HostStatus::Done(now);
                self.finish_job(now, slot);
                self.release_host(sched, now, slot);
            }
        }
    }

    fn host_poll(&mut self, sched: &mut Scheduler<SocEvent>, now: Cycle, slot: usize) {
        let Some(HostOp::PollUntilEq {
            addr,
            value,
            spin_cycles,
        }) = self.jobs[slot].host.current().cloned()
        else {
            return;
        };
        // The poll is a single-word uncached read on the configuration
        // sideband: it pays the full NoC round trip plus the memory
        // latency but does not contend with bulk DMA bandwidth (one word
        // against a 512-word/cycle HBM system).
        let one_way = self.noc.config().hop_latency * u64::from(self.noc.levels());
        let observed = match self.main.store().read_u64(addr) {
            Ok(v) => v,
            Err(e) => {
                self.fail(e.into());
                return;
            }
        };
        let arrival = now + one_way * 2 + Cycle::new(self.config.mem_latency);
        self.jobs[slot].activity.sync_ops += 1;
        self.telemetry
            .instant(now, Unit::Host, EventKind::BarrierPoll, observed);
        let job = &mut self.jobs[slot];
        job.host.poll_iterations += 1;
        job.host.busy_cycles += spin_cycles;
        if observed == value {
            job.phases.sync_done = arrival;
            job.host.pc += 1;
            job.host.status = HostStatus::Running;
            sched.schedule_at(arrival, SocEvent::HostStep { slot });
        } else {
            sched.schedule_at(
                arrival + Cycle::new(spin_cycles),
                SocEvent::HostPoll { slot },
            );
        }
    }

    /// The session job an event belongs to (0 = untagged): host events
    /// carry their slot, cluster/memory events resolve through the
    /// partition owner.
    fn event_job(&self, event: &SocEvent) -> JobId {
        let slot = match event {
            SocEvent::HostStep { slot }
            | SocEvent::HostPoll { slot }
            | SocEvent::HostIrq { slot } => Some(*slot),
            SocEvent::MailboxWrite { cluster, .. }
            | SocEvent::ClusterWake { cluster }
            | SocEvent::ClusterDesc { cluster }
            | SocEvent::DmaBurst { cluster }
            | SocEvent::ClusterDmaTaskDone { cluster, .. }
            | SocEvent::ClusterComputeDone { cluster, .. }
            | SocEvent::CreditArrive { cluster }
            | SocEvent::BarrierArrive { cluster, .. } => self.owner_of(*cluster),
        };
        slot.map_or(0, |s| self.jobs[s].id)
    }

    /// Seals job `slot` at its end time `now`: frees its partition,
    /// snapshots per-cluster results (timestamps shifted to be relative
    /// to the job's submission, so a solo job's outcome reads exactly
    /// like the legacy single-job path's) and queues the
    /// [`JobCompletion`].
    fn finish_job(&mut self, now: Cycle, slot: usize) {
        self.jobs[slot].done = true;
        let mask = self.jobs[slot].mask;
        for cluster in mask.iter() {
            self.cluster_owner[cluster] = None;
        }
        let submitted = self.jobs[slot].submitted_at;
        let total = now.saturating_sub(submitted);
        let rel = |t: Cycle| t.saturating_sub(submitted);

        let mut clusters = Vec::new();
        let mut core_reports = Vec::new();
        let mut tcdm_conflicts = 0;
        for (i, cluster) in mask.iter().enumerate() {
            let t = self.clusters[cluster].timing;
            clusters.push((
                cluster,
                ClusterTiming {
                    woken_at: rel(t.woken_at),
                    desc_at: rel(t.desc_at),
                    dma_in_at: rel(t.dma_in_at),
                    compute_at: rel(t.compute_at),
                    dma_out_at: rel(t.dma_out_at),
                    complete_at: rel(t.complete_at),
                },
            ));
            core_reports.push(self.clusters[cluster].core_reports.clone());
            tcdm_conflicts += self.tcdms[cluster].conflicts() - self.jobs[slot].conflict_base[i];
        }
        self.session_tcdm_conflicts += tcdm_conflicts;

        let events_delivered = self.events_delivered;
        let job = &mut self.jobs[slot];
        job.phases.host_issue_done = job.phases.host_issue_done.max(job.phases.last_dispatch);
        job.activity.host_cycles = job.host.busy_cycles;
        job.activity.cluster_cycles = mask.count() as u64 * total.as_u64();
        let energy = self.config.energy.evaluate(&job.activity);

        let phases = PhaseTimestamps {
            host_issue_done: rel(job.phases.host_issue_done),
            last_dispatch: rel(job.phases.last_dispatch),
            last_dma_in: rel(job.phases.last_dma_in),
            last_compute: rel(job.phases.last_compute),
            last_dma_out: rel(job.phases.last_dma_out),
            sync_done: rel(job.phases.sync_done),
        };
        let phase_breakdown = PhaseBreakdown::from_milestones(
            phases.last_dispatch,
            phases.last_dma_in,
            phases.last_compute,
            phases.last_dma_out,
            total,
        );
        let outcome = OffloadOutcome {
            total,
            phases,
            phase_breakdown,
            clusters,
            core_reports,
            energy,
            host_busy_cycles: job.host.busy_cycles,
            poll_iterations: job.host.poll_iterations,
            tcdm_conflicts,
            // Session-level counter at completion time; the single-job
            // wrapper overwrites this with the final count at quiescence.
            events_delivered,
        };
        self.completions.push_back(JobCompletion {
            job: job.id,
            mask,
            submitted_at: submitted,
            finished_at: now,
            host_wait_cycles: job.host_wait_cycles,
            contention: job.contention,
            outcome,
            corrupt_clusters: job.corrupt_clusters,
            faults_injected: job.faults_injected,
        });
    }
}

impl Simulate for Soc {
    type Event = SocEvent;

    fn handle(&mut self, sched: &mut Scheduler<SocEvent>, now: Cycle, event: SocEvent) {
        if self.fatal.is_some() {
            return;
        }
        // Ambient attribution: every telemetry record produced while
        // handling this event is tagged with the owning job (0 when the
        // owner is the legacy wrapper or the partition is free).
        self.telemetry.set_job(self.event_job(&event));
        match event {
            SocEvent::HostStep { slot } => self.host_step(sched, now, slot),
            SocEvent::HostPoll { slot } => self.host_poll(sched, now, slot),
            SocEvent::HostIrq { slot } => {
                self.jobs[slot].phases.sync_done = now;
                self.telemetry.instant(now, Unit::Host, EventKind::Irq, 0);
                match self.jobs[slot].host.status {
                    HostStatus::WaitingIrq => {
                        let job = &mut self.jobs[slot];
                        job.host.status = HostStatus::Running;
                        job.host.pc += 1;
                        // The ISR runs on the serial host core: take it
                        // if free, else queue behind the jobs holding it.
                        job.not_before = now;
                        if self.host_active.is_none() {
                            self.activate_host(sched, now, slot);
                        } else {
                            self.host_ready.push_back(slot);
                        }
                    }
                    _ => {
                        // IRQ raced ahead of WaitIrq; latch it.
                        self.jobs[slot].irq_pending = true;
                    }
                }
            }
            SocEvent::MailboxWrite {
                cluster,
                reg,
                value,
            } => {
                self.trace(
                    now,
                    "noc",
                    format!("mailbox[{cluster}].{reg:?} <- {value:#x}"),
                );
                match reg {
                    ClusterReg::JobPtr => {
                        self.clusters[cluster].mailbox_job_ptr = value;
                    }
                    ClusterReg::Wakeup => {
                        if let Some(slot) = self.owner_of(cluster) {
                            let phases = &mut self.jobs[slot].phases;
                            phases.last_dispatch = phases.last_dispatch.max(now);
                        }
                        self.telemetry.instant(
                            now,
                            Unit::Cluster(cluster as u32),
                            EventKind::DispatchEnd,
                            0,
                        );
                        if self.clusters[cluster].phase == ClusterPhase::Idle {
                            if self.clusters[cluster].job.is_none() {
                                self.fail(SocError::MissingJob { cluster });
                                return;
                            }
                            if self.faults.cluster_is_dead(cluster) {
                                // A permanently dead core: the doorbell
                                // rings into silence, the cluster stays
                                // Idle and never completes.
                                self.note_fault(now, FaultKind::DeadCluster, cluster);
                                return;
                            }
                            self.clusters[cluster].phase = ClusterPhase::Waking;
                            self.clusters[cluster].timing.woken_at = now;
                            self.clusters[cluster].wake_span = self.telemetry.begin(
                                now,
                                Unit::Cluster(cluster as u32),
                                EventKind::Wake,
                            );
                            if self.fault_strikes(now, FaultKind::WakeLoss, cluster) {
                                // The doorbell latched but the wake-up
                                // sequencer glitched: the controller
                                // never comes out of reset this time.
                                return;
                            }
                            sched.schedule_at(
                                now + Cycle::new(self.config.cluster_wake_cycles),
                                SocEvent::ClusterWake { cluster },
                            );
                        }
                    }
                }
            }
            SocEvent::ClusterWake { cluster } => {
                self.clusters[cluster].phase = ClusterPhase::Fetching;
                let wake = std::mem::take(&mut self.clusters[cluster].wake_span);
                self.telemetry
                    .end(now, Unit::Cluster(cluster as u32), EventKind::Wake, wake);
                self.clusters[cluster].desc_span =
                    self.telemetry
                        .begin(now, Unit::Cluster(cluster as u32), EventKind::DescFetch);
                let fetched = now + Cycle::new(self.desc_fetch_cycles());
                if let Some(slot) = self.owner_of(cluster) {
                    self.jobs[slot].activity.mem_words += self.config.descriptor_words;
                }
                sched.schedule_at(fetched, SocEvent::ClusterDesc { cluster });
            }
            SocEvent::ClusterDesc { cluster } => {
                self.clusters[cluster].timing.desc_at = now;
                let desc = std::mem::take(&mut self.clusters[cluster].desc_span);
                self.telemetry.end(
                    now,
                    Unit::Cluster(cluster as u32),
                    EventKind::DescFetch,
                    desc,
                );
                self.clusters[cluster].phase = ClusterPhase::DmaIn;
                // Stage scalar args (plus the trailing zero word of the
                // kernel ABI) into the TCDM argument area.
                let Some(job) = self.clusters[cluster].job.clone() else {
                    self.fail(SocError::MissingJob { cluster });
                    return;
                };
                let base = job.args_local_word;
                for (i, arg) in job.args.iter().enumerate() {
                    if let Err(e) = self.tcdms[cluster].write_f64(base + i as u64, *arg) {
                        self.fail(e.into());
                        return;
                    }
                }
                if let Err(e) = self.tcdms[cluster].write_f64(base + job.args.len() as u64, 0.0) {
                    self.fail(e.into());
                    return;
                }
                // Arm the pipeline and kick off the first stage.
                self.clusters[cluster].stages =
                    vec![crate::cluster::StageProgress::default(); job.stages.len()];
                self.clusters[cluster].dma_busy = false;
                self.clusters[cluster].compute_busy = false;
                self.clusters[cluster].completed = false;
                let t0 = now + Cycle::new(self.config.cluster_setup_cycles);
                self.cluster_dispatch(sched, t0, cluster);
            }
            SocEvent::DmaBurst { cluster } => self.handle_dma_burst(sched, now, cluster),
            SocEvent::ClusterDmaTaskDone {
                cluster,
                stage,
                dir,
            } => {
                self.clusters[cluster].dma_busy = false;
                let kind = match dir {
                    DmaDirection::In => EventKind::DmaIn,
                    DmaDirection::Out => EventKind::DmaOut,
                };
                let span = std::mem::take(&mut self.clusters[cluster].dma_span);
                self.telemetry
                    .end(now, Unit::ClusterDma(cluster as u32), kind, span);
                match dir {
                    DmaDirection::In => {
                        self.clusters[cluster].stages[stage].in_done = true;
                        self.clusters[cluster].timing.dma_in_at =
                            self.clusters[cluster].timing.dma_in_at.max(now);
                        if self.clusters[cluster].stages.iter().all(|s| s.in_done) {
                            if let Some(slot) = self.owner_of(cluster) {
                                let phases = &mut self.jobs[slot].phases;
                                phases.last_dma_in = phases.last_dma_in.max(now);
                            }
                        }
                    }
                    DmaDirection::Out => {
                        self.clusters[cluster].stages[stage].out_done = true;
                        self.clusters[cluster].timing.dma_out_at =
                            self.clusters[cluster].timing.dma_out_at.max(now);
                        if self.clusters[cluster].stages.iter().all(|s| s.out_done) {
                            if let Some(slot) = self.owner_of(cluster) {
                                let phases = &mut self.jobs[slot].phases;
                                phases.last_dma_out = phases.last_dma_out.max(now);
                            }
                        }
                    }
                }
                self.cluster_dispatch(sched, now, cluster);
            }
            SocEvent::ClusterComputeDone { cluster, stage } => {
                self.clusters[cluster].compute_busy = false;
                self.clusters[cluster].stages[stage].compute_done = true;
                let span = std::mem::take(&mut self.clusters[cluster].compute_span);
                self.telemetry.end(
                    now,
                    Unit::ClusterCores(cluster as u32),
                    EventKind::Compute,
                    span,
                );
                self.clusters[cluster].timing.compute_at =
                    self.clusters[cluster].timing.compute_at.max(now);
                if self.clusters[cluster].stages.iter().all(|s| s.compute_done) {
                    if let Some(slot) = self.owner_of(cluster) {
                        let phases = &mut self.jobs[slot].phases;
                        phases.last_compute = phases.last_compute.max(now);
                    }
                }
                self.cluster_dispatch(sched, now, cluster);
            }
            SocEvent::CreditArrive { cluster } => {
                self.clusters[cluster].timing.complete_at = now;
                self.stats.incr("credit.increments");
                self.telemetry.instant(
                    now,
                    Unit::CreditUnit,
                    EventKind::CreditReturn,
                    cluster as u64,
                );
                if let Some(slot) = self.owner_of(cluster) {
                    self.jobs[slot].activity.sync_ops += 1;
                    if self.fault_strikes(now, FaultKind::CreditLoss, cluster) {
                        // The increment wire glitched: the counter never
                        // sees this credit, the barrier wedges.
                        self.jobs[slot].credit.absorb_lost(now);
                    } else if let Some(fire_at) = self.jobs[slot].credit.increment(now) {
                        sched.schedule_at(
                            fire_at + Cycle::new(self.config.irq_latency),
                            SocEvent::HostIrq { slot },
                        );
                    }
                }
            }
            SocEvent::BarrierArrive { cluster, addr } => {
                self.clusters[cluster].timing.complete_at = now;
                self.stats.incr("barrier.amos");
                self.telemetry.instant(
                    now,
                    Unit::MainMem,
                    EventKind::BarrierArrive,
                    cluster as u64,
                );
                if let Some(slot) = self.owner_of(cluster) {
                    self.jobs[slot].activity.sync_ops += 1;
                }
                match self.main.amo_add(now, addr, 1) {
                    Ok((_, done)) => {
                        // Completion past the AMO's own service and access
                        // latency is time queued on the shared atomic unit.
                        let wait = done
                            .saturating_sub(now)
                            .as_u64()
                            .saturating_sub(self.config.amo_service + self.config.mem_latency);
                        if wait > 0 {
                            if let Some(slot) = self.owner_of(cluster) {
                                self.jobs[slot].contention.amo_wait_cycles += wait;
                            }
                        }
                    }
                    Err(e) => self.fail(e.into()),
                }
            }
        }
    }
}

impl Soc {
    /// Checks that every cluster in `mask` has a well-formed job bound.
    fn validate_bindings(&self, mask: ClusterMask) -> Result<(), SocError> {
        for cluster in mask.iter() {
            let state = &self.clusters[cluster];
            let Some(job) = &state.job else {
                return Err(SocError::MissingJob { cluster });
            };
            if job.stages.is_empty() {
                return Err(SocError::ProgramCount {
                    cluster,
                    got: 0,
                    want: self.config.cores_per_cluster,
                });
            }
            for stage in &job.stages {
                if stage.programs.len() != self.config.cores_per_cluster {
                    return Err(SocError::ProgramCount {
                        cluster,
                        got: stage.programs.len(),
                        want: self.config.cores_per_cluster,
                    });
                }
            }
        }
        Ok(())
    }

    /// Opens a concurrent-job session: clears execution and bookkeeping
    /// state from previous runs (operand data in main memory and cluster
    /// job bindings persist), so identical sessions replay identically.
    pub fn begin_jobs(&mut self) {
        self.queue.clear();
        self.session_now = Cycle::ZERO;
        self.events_delivered = 0;
        self.jobs.clear();
        self.cluster_owner.fill(None);
        self.host_active = None;
        self.host_ready.clear();
        self.next_job_id = 1;
        self.completions.clear();
        self.session_tcdm_conflicts = 0;
        self.stats_folded = false;
        self.stats.clear();
        self.telemetry.clear();
        // The ground-truth fault log is per-session; occurrence counters
        // are NOT reset, so a retry session rolls fresh dice (a
        // transient fault stays transient across re-dispatch).
        self.faults.clear_records();
        self.fatal = None;
        self.main.reset_timing();
        self.noc.reset();
        for cluster in &mut self.clusters {
            cluster.phase = ClusterPhase::Idle;
            cluster.timing = Default::default();
            cluster.core_reports.clear();
            cluster.stages.clear();
            cluster.dma_busy = false;
            cluster.compute_busy = false;
            cluster.completed = false;
            cluster.wake_span = 0;
            cluster.desc_span = 0;
            cluster.dma_span = 0;
            cluster.compute_span = 0;
        }
        for tcdm in &mut self.tcdms {
            tcdm.reset_timing();
        }
        self.dma.fill(None);
    }

    /// Submits a job into the open session at absolute session time `at`
    /// (clamped up to the current session time): its host program starts
    /// marshalling as soon as the serial host core is free. Returns the
    /// assigned [`JobId`].
    ///
    /// # Errors
    ///
    /// - [`SocError::MissingJob`] / [`SocError::ProgramCount`] for
    ///   inconsistent bindings on `mask`,
    /// - [`SocError::PartitionOverlap`] if any cluster in `mask` belongs
    ///   to a job still in flight.
    pub fn submit_job(
        &mut self,
        program: HostProgram,
        mask: ClusterMask,
        at: Cycle,
    ) -> Result<JobId, SocError> {
        let id = self.next_job_id;
        self.submit_with_id(id, program, mask, at)?;
        self.next_job_id += 1;
        Ok(id)
    }

    fn submit_with_id(
        &mut self,
        id: JobId,
        program: HostProgram,
        mask: ClusterMask,
        at: Cycle,
    ) -> Result<(), SocError> {
        self.validate_bindings(mask)?;
        for cluster in mask.iter() {
            if self.cluster_owner[cluster].is_some() {
                return Err(SocError::PartitionOverlap { cluster });
            }
        }
        let at = at.max(self.session_now);
        let slot = self.jobs.len();
        let conflict_base = mask.iter().map(|c| self.tcdms[c].conflicts()).collect();
        for cluster in mask.iter() {
            self.cluster_owner[cluster] = Some(slot);
            // Re-arm cluster execution state: a partition may be reused
            // by successive jobs within one session.
            let state = &mut self.clusters[cluster];
            state.phase = ClusterPhase::Idle;
            state.timing = Default::default();
            state.core_reports.clear();
            state.stages.clear();
            state.dma_busy = false;
            state.compute_busy = false;
            state.completed = false;
            state.wake_span = 0;
            state.desc_span = 0;
            state.dma_span = 0;
            state.compute_span = 0;
            self.dma[cluster] = None;
        }
        self.jobs.push(JobSlot {
            id,
            mask,
            host: HostState::new(program),
            irq_pending: false,
            credit: crate::CreditCounter::new(),
            phases: PhaseTimestamps::default(),
            activity: EnergyActivity::default(),
            contention: ContentionReport::default(),
            submitted_at: at,
            not_before: at,
            host_wait_cycles: 0,
            conflict_base,
            corrupt_clusters: 0,
            faults_injected: 0,
            done: false,
        });
        if self.host_active.is_none() {
            // The host is free: the job starts marshalling at `at`.
            self.host_active = Some(slot);
            self.queue.push(at, SocEvent::HostStep { slot });
        } else {
            self.host_ready.push_back(slot);
        }
        Ok(())
    }

    /// Delivers the next scheduled event; returns its time, or `None`
    /// when the queue has drained.
    fn pump_one(&mut self) -> Option<Cycle> {
        let scheduled = self.queue.pop()?;
        let (time, event) = scheduled.into_parts();
        self.session_now = time;
        self.events_delivered += 1;
        // Detach the queue so the handler can borrow `self` mutably; new
        // events land in the same queue object, preserving FIFO order.
        let mut queue = std::mem::replace(&mut self.queue, EventQueue::new());
        let mut sched = Scheduler::attach(&mut queue, time);
        self.handle(&mut sched, time, event);
        debug_assert!(self.queue.is_empty());
        self.queue = queue;
        Some(time)
    }

    /// Advances the session until the next job completion, the `horizon`
    /// (inclusive), or quiescence — whichever comes first. On a
    /// completion, events past the completion instant have not been
    /// processed yet, so callers observe completions in order.
    ///
    /// # Errors
    ///
    /// Propagates the first fatal error ([`SocError::Core`],
    /// [`SocError::Memory`], [`SocError::HostStalled`]) raised by any
    /// job; the session is dead afterwards.
    pub fn advance_jobs(&mut self, horizon: Cycle) -> Result<SessionProgress, SocError> {
        let _prof = mpsoc_sim::profile::scope("soc.session.advance");
        loop {
            if let Some(e) = self.fatal.take() {
                return Err(e);
            }
            if let Some(done) = self.completions.pop_front() {
                return Ok(SessionProgress::Completed(Box::new(done)));
            }
            match self.queue.peek_time() {
                None => return Ok(SessionProgress::Idle),
                Some(t) if t > horizon => return Ok(SessionProgress::Horizon),
                Some(_) => {
                    self.pump_one();
                }
            }
        }
    }

    /// Current session virtual time: the timestamp of the last delivered
    /// event.
    pub fn session_now(&self) -> Cycle {
        self.session_now
    }

    /// Jobs submitted this session that have not yet completed.
    pub fn jobs_in_flight(&self) -> usize {
        self.jobs.iter().filter(|j| !j.done).count()
    }

    /// Folds the per-resource contention registries (NoC, main memory,
    /// TCDM) into the session stats under the stable `contention.*`
    /// prefix, plus per-job tagged copies (`contention.job<id>.*`) of
    /// each job's attributed share. Idempotent within one session; call
    /// after the last completion.
    pub fn fold_session_stats(&mut self) {
        if self.stats_folded {
            return;
        }
        self.stats_folded = true;
        self.stats.merge(self.noc.stats());
        self.stats.merge(self.main.stats());
        self.stats.add(
            "contention.tcdm.bank_conflicts",
            self.session_tcdm_conflicts,
        );
        for job in &self.jobs {
            if job.id == 0 {
                continue;
            }
            let prefix = format!("contention.job{}", job.id);
            self.stats.add(
                &format!("{prefix}.noc_stall_cycles"),
                job.contention.noc_stall_cycles,
            );
            self.stats.add(
                &format!("{prefix}.hbm_queue_cycles"),
                job.contention.hbm_queue_cycles.round() as u64,
            );
            self.stats.add(
                &format!("{prefix}.amo_wait_cycles"),
                job.contention.amo_wait_cycles,
            );
            self.stats
                .add(&format!("{prefix}.host_wait_cycles"), job.host_wait_cycles);
        }
    }

    /// Runs one offload: executes `program` on the host against the jobs
    /// bound to the clusters in `mask`, from cycle 0 to host completion.
    ///
    /// This is the legacy single-job path, now a thin wrapper over the
    /// concurrent-job session machinery (one submission at cycle 0,
    /// pumped to quiescence) — cycle-for-cycle and event-for-event
    /// identical to the historical blocking implementation.
    ///
    /// # Errors
    ///
    /// - [`SocError::MissingJob`] / [`SocError::ProgramCount`] for
    ///   inconsistent bindings,
    /// - [`SocError::Core`] / [`SocError::Memory`] for faults during
    ///   execution,
    /// - [`SocError::HostStalled`] if the simulation ends without the
    ///   host program reaching [`HostOp::End`] (e.g. a completion signal
    ///   that can never fire).
    pub fn run_offload(
        &mut self,
        program: HostProgram,
        mask: ClusterMask,
    ) -> Result<OffloadOutcome, SocError> {
        // Validate before touching any state: binding errors must leave
        // the SoC exactly as it was (historical behaviour).
        self.validate_bindings(mask)?;
        self.begin_jobs();
        self.submit_with_id(0, program, mask, Cycle::ZERO)
            .expect("bindings validated and no job in flight");
        // 50M events is far beyond any legitimate offload in this study;
        // hitting it means a stuck polling loop.
        let mut budget = 50_000_000u64;
        while budget > 0 && self.pump_one().is_some() {
            budget -= 1;
        }
        if let Some(error) = self.fatal.take() {
            return Err(error);
        }
        let Some(completion) = self.completions.pop_front() else {
            // Quiescent (or budget-exhausted) without End: the host hung.
            return Err(SocError::HostStalled {
                pc: self.jobs[0].host.pc,
            });
        };
        self.fold_session_stats();
        let mut outcome = completion.outcome;
        outcome.events_delivered = self.events_delivered;
        Ok(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClusterJob, CompletionSignal, Transfer};
    use mpsoc_isa::{FpReg, IntReg, Program, ProgramBuilder};

    fn nop_program() -> Program {
        let mut b = ProgramBuilder::new();
        b.halt();
        b.build().unwrap()
    }

    fn nop_job(completion: CompletionSignal, cores: usize) -> ClusterJob {
        ClusterJob::single(
            vec![nop_program(); cores],
            vec![],
            vec![],
            vec![],
            0,
            completion,
        )
    }

    fn small_soc(clusters: usize) -> Soc {
        let mut cfg = SocConfig::with_clusters(clusters);
        cfg.cores_per_cluster = 2;
        Soc::new(cfg).unwrap()
    }

    #[test]
    fn credit_offload_round_trip() {
        let mut soc = small_soc(2);
        for c in 0..2 {
            soc.bind_job(c, nop_job(CompletionSignal::Credit, 2));
        }
        let program = HostProgram::new(vec![
            HostOp::Compute(50),
            HostOp::CreditArm { threshold: 2 },
            HostOp::MulticastMailbox {
                mask: ClusterMask::first(2),
                reg: ClusterReg::Wakeup,
                value: 1,
            },
            HostOp::WaitIrq,
            HostOp::Compute(60),
            HostOp::End,
        ]);
        let outcome = soc.run_offload(program, ClusterMask::first(2)).unwrap();
        assert!(outcome.total > Cycle::new(110));
        assert_eq!(outcome.clusters.len(), 2);
        assert_eq!(outcome.poll_iterations, 0);
        assert!(outcome.phases.sync_done > outcome.phases.last_dispatch);
        assert!(outcome.energy.total_pj() > 0.0);
    }

    #[test]
    fn barrier_offload_round_trip() {
        let mut soc = small_soc(2);
        let barrier = soc.map().main_base().add_words(100);
        for c in 0..2 {
            soc.bind_job(c, nop_job(CompletionSignal::Barrier { addr: barrier }, 2));
        }
        let program = HostProgram::new(vec![
            HostOp::StoreUncachedMain {
                addr: barrier,
                value: 0,
            },
            HostOp::StoreMailbox {
                cluster: 0,
                reg: ClusterReg::Wakeup,
                value: 1,
            },
            HostOp::StoreMailbox {
                cluster: 1,
                reg: ClusterReg::Wakeup,
                value: 1,
            },
            HostOp::PollUntilEq {
                addr: barrier,
                value: 2,
                spin_cycles: 4,
            },
            HostOp::End,
        ]);
        let outcome = soc.run_offload(program, ClusterMask::first(2)).unwrap();
        assert!(outcome.poll_iterations >= 1);
        assert_eq!(soc.main().store().read_u64(barrier).unwrap(), 2);
        assert!(outcome.total > Cycle::ZERO);
    }

    #[test]
    fn dma_moves_real_data_and_cores_compute() {
        // One cluster, one core: DMA in two words, scale by arg via a tiny
        // program, DMA result back out.
        let mut cfg = SocConfig::with_clusters(1);
        cfg.cores_per_cluster = 1;
        let mut soc = Soc::new(cfg).unwrap();
        let base = soc.map().main_base();
        soc.main_mut()
            .store_mut()
            .write_f64_slice(base, &[3.0, 4.0])
            .unwrap();

        // Program: y[i] = a * x[i] for 2 elements, all in TCDM.
        // Layout: x at words 0..2, result at 2..4, args at word 10.
        let mut b = ProgramBuilder::new();
        let (x1, x2, x4) = (IntReg::new(1), IntReg::new(2), IntReg::new(4));
        b.li(x1, 0);
        b.li(x2, 16);
        b.li(x4, 80);
        b.fld(FpReg::new(31), x4, 0);
        for i in 0..2 {
            b.fld(FpReg::new(0), x1, i * 8);
            b.fmul(FpReg::new(1), FpReg::new(31), FpReg::new(0));
            b.fsd(FpReg::new(1), x2, i * 8);
        }
        b.halt();
        let program = b.build().unwrap();

        let job = ClusterJob::single(
            vec![program],
            vec![Transfer {
                main_addr: base,
                local_word: 0,
                words: 2,
            }],
            vec![Transfer {
                main_addr: base.add_words(8),
                local_word: 2,
                words: 2,
            }],
            vec![10.0],
            10,
            CompletionSignal::Credit,
        );
        soc.bind_job(0, job);

        let hp = HostProgram::new(vec![
            HostOp::CreditArm { threshold: 1 },
            HostOp::StoreMailbox {
                cluster: 0,
                reg: ClusterReg::Wakeup,
                value: 1,
            },
            HostOp::WaitIrq,
            HostOp::End,
        ]);
        let outcome = soc.run_offload(hp, ClusterMask::single(0)).unwrap();
        let result = soc
            .main()
            .store()
            .read_f64_slice(base.add_words(8), 2)
            .unwrap();
        assert_eq!(result, vec![30.0, 40.0]);
        let (_, timing) = outcome.clusters[0];
        assert!(timing.dma_in_at > timing.desc_at);
        assert!(timing.compute_at > timing.dma_in_at);
        assert!(timing.dma_out_at > timing.compute_at);
        assert!(timing.complete_at > timing.dma_out_at);
        assert!(outcome.total > timing.complete_at);
    }

    #[test]
    fn missing_job_is_reported() {
        let mut soc = small_soc(2);
        soc.bind_job(0, nop_job(CompletionSignal::Credit, 2));
        let hp = HostProgram::new(vec![HostOp::End]);
        let err = soc.run_offload(hp, ClusterMask::first(2)).unwrap_err();
        assert!(matches!(err, SocError::MissingJob { cluster: 1 }));
    }

    #[test]
    fn wrong_program_count_is_reported() {
        let mut soc = small_soc(1);
        soc.bind_job(0, nop_job(CompletionSignal::Credit, 5));
        let hp = HostProgram::new(vec![HostOp::End]);
        let err = soc.run_offload(hp, ClusterMask::single(0)).unwrap_err();
        assert!(matches!(
            err,
            SocError::ProgramCount {
                cluster: 0,
                got: 5,
                want: 2
            }
        ));
    }

    #[test]
    fn host_waiting_for_impossible_irq_stalls() {
        let mut soc = small_soc(1);
        soc.bind_job(0, nop_job(CompletionSignal::Credit, 2));
        // Threshold 2 but only one cluster completes: the IRQ never fires.
        let hp = HostProgram::new(vec![
            HostOp::CreditArm { threshold: 2 },
            HostOp::StoreMailbox {
                cluster: 0,
                reg: ClusterReg::Wakeup,
                value: 1,
            },
            HostOp::WaitIrq,
            HostOp::End,
        ]);
        let err = soc.run_offload(hp, ClusterMask::single(0)).unwrap_err();
        assert!(matches!(err, SocError::HostStalled { .. }));
    }

    #[test]
    fn irq_racing_ahead_of_wait_is_latched() {
        let mut soc = small_soc(1);
        soc.bind_job(0, nop_job(CompletionSignal::Credit, 2));
        // A long Compute keeps the host busy past cluster completion, so
        // HostIrq is delivered while the host is still Running.
        let hp = HostProgram::new(vec![
            HostOp::CreditArm { threshold: 1 },
            HostOp::StoreMailbox {
                cluster: 0,
                reg: ClusterReg::Wakeup,
                value: 1,
            },
            HostOp::Compute(100_000),
            HostOp::WaitIrq,
            HostOp::End,
        ]);
        let outcome = soc.run_offload(hp, ClusterMask::single(0)).unwrap();
        assert!(outcome.total >= Cycle::new(100_000));
    }

    #[test]
    fn multiple_offloads_on_one_soc_are_independent() {
        let mut soc = small_soc(1);
        soc.bind_job(0, nop_job(CompletionSignal::Credit, 2));
        let hp = || {
            HostProgram::new(vec![
                HostOp::CreditArm { threshold: 1 },
                HostOp::StoreMailbox {
                    cluster: 0,
                    reg: ClusterReg::Wakeup,
                    value: 1,
                },
                HostOp::WaitIrq,
                HostOp::End,
            ])
        };
        let a = soc.run_offload(hp(), ClusterMask::single(0)).unwrap();
        let b = soc.run_offload(hp(), ClusterMask::single(0)).unwrap();
        assert_eq!(a.total, b.total, "offloads must be reproducible");
    }

    #[test]
    fn telemetry_trace_validates_and_phases_sum_to_total() {
        let mut soc = small_soc(2);
        for c in 0..2 {
            soc.bind_job(c, nop_job(CompletionSignal::Credit, 2));
        }
        soc.enable_telemetry(4096);
        let program = HostProgram::new(vec![
            HostOp::CreditArm { threshold: 2 },
            HostOp::MulticastMailbox {
                mask: ClusterMask::first(2),
                reg: ClusterReg::Wakeup,
                value: 1,
            },
            HostOp::WaitIrq,
            HostOp::End,
        ]);
        let outcome = soc.run_offload(program, ClusterMask::first(2)).unwrap();

        // The typed trace exports as schema-valid Chrome trace JSON.
        let json = mpsoc_telemetry::chrome_trace_json(soc.telemetry());
        let summary = mpsoc_telemetry::validate_chrome_trace(&json).expect("valid trace");
        assert!(summary.events > 0);
        assert!(summary.spans >= 4, "wake + desc-fetch spans per cluster");

        // Phase attribution sums exactly to the end-to-end runtime.
        let pb = outcome.phase_breakdown;
        assert_eq!(
            pb.dispatch + pb.dma_in + pb.compute + pb.dma_out + pb.sync,
            outcome.total.as_u64(),
            "no unattributed cycles"
        );
        assert!(pb.dispatch > 0);
        assert!(pb.sync > 0);
    }

    #[test]
    fn telemetry_does_not_perturb_timing() {
        let run = |telemetry: bool| {
            let mut soc = small_soc(2);
            for c in 0..2 {
                soc.bind_job(c, nop_job(CompletionSignal::Credit, 2));
            }
            if telemetry {
                soc.enable_telemetry(4096);
            }
            let program = HostProgram::new(vec![
                HostOp::CreditArm { threshold: 2 },
                HostOp::MulticastMailbox {
                    mask: ClusterMask::first(2),
                    reg: ClusterReg::Wakeup,
                    value: 1,
                },
                HostOp::WaitIrq,
                HostOp::End,
            ]);
            soc.run_offload(program, ClusterMask::first(2)).unwrap()
        };
        let plain = run(false);
        let traced = run(true);
        assert_eq!(plain.total, traced.total);
        assert_eq!(plain.phases, traced.phases);
        assert_eq!(plain.phase_breakdown, traced.phase_breakdown);
    }

    #[test]
    fn telemetry_trace_is_reproducible() {
        let run = || {
            let mut soc = small_soc(2);
            for c in 0..2 {
                soc.bind_job(c, nop_job(CompletionSignal::Credit, 2));
            }
            soc.enable_telemetry(4096);
            let program = HostProgram::new(vec![
                HostOp::CreditArm { threshold: 2 },
                HostOp::MulticastMailbox {
                    mask: ClusterMask::first(2),
                    reg: ClusterReg::Wakeup,
                    value: 1,
                },
                HostOp::WaitIrq,
                HostOp::End,
            ]);
            soc.run_offload(program, ClusterMask::first(2)).unwrap();
            mpsoc_telemetry::chrome_trace_json(soc.telemetry())
        };
        assert_eq!(run(), run(), "equal inputs must give byte-identical traces");
    }

    #[test]
    fn contention_counters_surface_in_offload_stats() {
        let mut soc = small_soc(8);
        for c in 0..8 {
            soc.bind_job(c, nop_job(CompletionSignal::Credit, 2));
        }
        let mut ops = vec![HostOp::CreditArm { threshold: 8 }];
        for c in 0..8 {
            ops.push(HostOp::StoreMailbox {
                cluster: c,
                reg: ClusterReg::Wakeup,
                value: 1,
            });
        }
        ops.push(HostOp::WaitIrq);
        ops.push(HostOp::End);
        soc.run_offload(HostProgram::new(ops), ClusterMask::first(8))
            .unwrap();
        // The per-resource registries are folded into the offload stats
        // under the stable prefix; the TCDM counter always exists.
        let names: Vec<&str> = soc
            .stats()
            .counters()
            .map(|(name, _)| name)
            .filter(|name| name.starts_with("contention."))
            .collect();
        assert!(names.contains(&"contention.tcdm.bank_conflicts"));
    }

    #[test]
    fn partition_overlap_is_rejected() {
        let mut soc = small_soc(2);
        for c in 0..2 {
            soc.bind_job(c, nop_job(CompletionSignal::Credit, 2));
        }
        let hp = || {
            HostProgram::new(vec![
                HostOp::CreditArm { threshold: 1 },
                HostOp::StoreMailbox {
                    cluster: 0,
                    reg: ClusterReg::Wakeup,
                    value: 1,
                },
                HostOp::WaitIrq,
                HostOp::End,
            ])
        };
        soc.begin_jobs();
        soc.submit_job(hp(), ClusterMask::single(0), Cycle::ZERO)
            .unwrap();
        let err = soc
            .submit_job(hp(), ClusterMask::single(0), Cycle::ZERO)
            .unwrap_err();
        assert!(matches!(err, SocError::PartitionOverlap { cluster: 0 }));
    }

    #[test]
    fn session_single_job_matches_legacy_wrapper() {
        let build = || {
            let mut soc = small_soc(2);
            for c in 0..2 {
                soc.bind_job(c, nop_job(CompletionSignal::Credit, 2));
            }
            soc
        };
        let program = || {
            HostProgram::new(vec![
                HostOp::Compute(40),
                HostOp::CreditArm { threshold: 2 },
                HostOp::MulticastMailbox {
                    mask: ClusterMask::first(2),
                    reg: ClusterReg::Wakeup,
                    value: 1,
                },
                HostOp::WaitIrq,
                HostOp::End,
            ])
        };
        let mut legacy = build();
        let a = legacy
            .run_offload(program(), ClusterMask::first(2))
            .unwrap();

        let mut session = build();
        session.begin_jobs();
        let id = session
            .submit_job(program(), ClusterMask::first(2), Cycle::ZERO)
            .unwrap();
        let done = match session.advance_jobs(Cycle::MAX).unwrap() {
            SessionProgress::Completed(c) => c,
            other => panic!("expected a completion, got {other:?}"),
        };
        assert_eq!(done.job, id);
        assert_eq!(done.submitted_at, Cycle::ZERO);
        assert_eq!(done.host_wait_cycles, 0, "solo job never queues");
        assert_eq!(done.outcome.total, a.total);
        assert_eq!(done.outcome.phases, a.phases);
        assert_eq!(done.outcome.phase_breakdown, a.phase_breakdown);
        assert_eq!(done.outcome.host_busy_cycles, a.host_busy_cycles);
        assert!(matches!(
            session.advance_jobs(Cycle::MAX).unwrap(),
            SessionProgress::Idle
        ));
    }

    #[test]
    fn concurrent_tenants_serialize_on_the_host_and_both_complete() {
        let build = || {
            let mut soc = small_soc(2);
            for c in 0..2 {
                soc.bind_job(c, nop_job(CompletionSignal::Credit, 2));
            }
            soc
        };
        let hp = |cluster: usize| {
            HostProgram::new(vec![
                HostOp::Compute(500),
                HostOp::CreditArm { threshold: 1 },
                HostOp::StoreMailbox {
                    cluster,
                    reg: ClusterReg::Wakeup,
                    value: 1,
                },
                HostOp::WaitIrq,
                HostOp::End,
            ])
        };
        // Tenant B's solo-run reference on an otherwise idle SoC.
        let solo = build().run_offload(hp(1), ClusterMask::single(1)).unwrap();

        let mut soc = build();
        soc.begin_jobs();
        let a = soc
            .submit_job(hp(0), ClusterMask::single(0), Cycle::ZERO)
            .unwrap();
        let b = soc
            .submit_job(hp(1), ClusterMask::single(1), Cycle::ZERO)
            .unwrap();
        let mut done = Vec::new();
        while let SessionProgress::Completed(c) = soc.advance_jobs(Cycle::MAX).unwrap() {
            done.push(*c);
        }
        assert_eq!(done.len(), 2);
        assert_eq!(soc.jobs_in_flight(), 0);
        assert!(done.iter().any(|c| c.job == a));
        let b_done = done.iter().find(|c| c.job == b).expect("job b completed");
        // Tenant B could not start marshalling until tenant A's 500-cycle
        // marshalling phase released the serial host core.
        assert!(
            b_done.host_wait_cycles >= 500,
            "host wait {} cycles",
            b_done.host_wait_cycles
        );
        assert!(
            b_done.outcome.total > solo.total,
            "co-resident total {} must exceed solo {}",
            b_done.outcome.total.as_u64(),
            solo.total.as_u64()
        );
        soc.fold_session_stats();
        assert!(
            soc.stats()
                .counter(&format!("contention.job{b}.host_wait_cycles"))
                >= 500
        );
    }

    #[test]
    fn session_partitions_are_reusable_after_completion() {
        let mut soc = small_soc(1);
        soc.bind_job(0, nop_job(CompletionSignal::Credit, 2));
        let hp = || {
            HostProgram::new(vec![
                HostOp::CreditArm { threshold: 1 },
                HostOp::StoreMailbox {
                    cluster: 0,
                    reg: ClusterReg::Wakeup,
                    value: 1,
                },
                HostOp::WaitIrq,
                HostOp::End,
            ])
        };
        soc.begin_jobs();
        let first = soc
            .submit_job(hp(), ClusterMask::single(0), Cycle::ZERO)
            .unwrap();
        let done = match soc.advance_jobs(Cycle::MAX).unwrap() {
            SessionProgress::Completed(c) => c,
            other => panic!("expected completion, got {other:?}"),
        };
        assert_eq!(done.job, first);
        // Same partition, second tenant, later in the same session.
        let at = soc.session_now();
        let second = soc.submit_job(hp(), ClusterMask::single(0), at).unwrap();
        let done2 = match soc.advance_jobs(Cycle::MAX).unwrap() {
            SessionProgress::Completed(c) => c,
            other => panic!("expected completion, got {other:?}"),
        };
        assert_eq!(done2.job, second);
        assert_eq!(
            done2.outcome.total, done.outcome.total,
            "a re-run on a drained SoC takes the same relative time"
        );
    }

    #[test]
    fn concurrent_sessions_are_deterministic() {
        let run = || {
            let mut soc = small_soc(2);
            for c in 0..2 {
                soc.bind_job(c, nop_job(CompletionSignal::Credit, 2));
            }
            let hp = |cluster: usize| {
                HostProgram::new(vec![
                    HostOp::Compute(100),
                    HostOp::CreditArm { threshold: 1 },
                    HostOp::StoreMailbox {
                        cluster,
                        reg: ClusterReg::Wakeup,
                        value: 1,
                    },
                    HostOp::WaitIrq,
                    HostOp::End,
                ])
            };
            soc.begin_jobs();
            soc.submit_job(hp(0), ClusterMask::single(0), Cycle::ZERO)
                .unwrap();
            soc.submit_job(hp(1), ClusterMask::single(1), Cycle::ZERO)
                .unwrap();
            let mut finishes = Vec::new();
            while let SessionProgress::Completed(c) = soc.advance_jobs(Cycle::MAX).unwrap() {
                finishes.push((c.job, c.finished_at, c.host_wait_cycles));
            }
            finishes
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn sequential_dispatch_wakes_clusters_later_than_multicast() {
        let run = |multicast: bool| {
            let mut soc = small_soc(8);
            for c in 0..8 {
                soc.bind_job(c, nop_job(CompletionSignal::Credit, 2));
            }
            let mut ops = vec![HostOp::CreditArm { threshold: 8 }];
            if multicast {
                ops.push(HostOp::MulticastMailbox {
                    mask: ClusterMask::first(8),
                    reg: ClusterReg::Wakeup,
                    value: 1,
                });
            } else {
                for c in 0..8 {
                    ops.push(HostOp::StoreMailbox {
                        cluster: c,
                        reg: ClusterReg::Wakeup,
                        value: 1,
                    });
                }
            }
            ops.push(HostOp::WaitIrq);
            ops.push(HostOp::End);
            soc.run_offload(HostProgram::new(ops), ClusterMask::first(8))
                .unwrap()
        };
        let seq = run(false);
        let mc = run(true);
        assert!(
            mc.phases.last_dispatch < seq.phases.last_dispatch,
            "multicast must deliver the last doorbell earlier"
        );
        assert!(mc.total < seq.total);
    }

    fn credit_program(clusters: usize) -> HostProgram {
        HostProgram::new(vec![
            HostOp::CreditArm {
                threshold: clusters as u64,
            },
            HostOp::MulticastMailbox {
                mask: ClusterMask::first(clusters),
                reg: ClusterReg::Wakeup,
                value: 1,
            },
            HostOp::WaitIrq,
            HostOp::End,
        ])
    }

    #[test]
    fn noop_fault_plan_changes_nothing() {
        let run = |install: bool| {
            let mut soc = small_soc(2);
            if install {
                soc.install_faults(FaultPlan::with_seed(42));
            }
            for c in 0..2 {
                soc.bind_job(c, nop_job(CompletionSignal::Credit, 2));
            }
            soc.run_offload(credit_program(2), ClusterMask::first(2))
                .unwrap()
        };
        let plain = run(false);
        let planned = run(true);
        assert_eq!(plain.total, planned.total);
        assert_eq!(plain.phases, planned.phases);
        assert_eq!(plain.events_delivered, planned.events_delivered);
    }

    #[test]
    fn lost_credit_wedges_the_session_observably() {
        let mut soc = small_soc(2);
        let mut plan = FaultPlan::with_seed(1);
        plan.credit_loss = crate::SiteSpec::once_at(0);
        soc.install_faults(plan);
        for c in 0..2 {
            soc.bind_job(c, nop_job(CompletionSignal::Credit, 2));
        }
        soc.begin_jobs();
        soc.submit_job(credit_program(2), ClusterMask::first(2), Cycle::ZERO)
            .unwrap();
        // The first credit is eaten in flight: the IRQ never fires, the
        // host parks on WaitIrq and the event queue drains — the exact
        // lost-completion signature a watchdog must catch.
        assert!(matches!(
            soc.advance_jobs(Cycle::MAX).unwrap(),
            SessionProgress::Idle
        ));
        assert_eq!(soc.jobs_in_flight(), 1);
        // Both clusters did their work: attribution must not implicate
        // either of them.
        assert!(soc.cluster_completed(0));
        assert!(soc.cluster_completed(1));
        assert_eq!(soc.fault_stats().credit_loss, 1);
        assert_eq!(soc.faults().records().len(), 1);
    }

    #[test]
    fn dropped_dispatch_beat_leaves_one_cluster_dark() {
        let mut soc = small_soc(2);
        let mut plan = FaultPlan::with_seed(1);
        plan.dispatch_drop = crate::SiteSpec::once_at(0);
        soc.install_faults(plan);
        for c in 0..2 {
            soc.bind_job(c, nop_job(CompletionSignal::Credit, 2));
        }
        soc.begin_jobs();
        soc.submit_job(credit_program(2), ClusterMask::first(2), Cycle::ZERO)
            .unwrap();
        assert!(matches!(
            soc.advance_jobs(Cycle::MAX).unwrap(),
            SessionProgress::Idle
        ));
        // The first multicast beat (cluster 0) was dropped: cluster 0
        // never woke while cluster 1 finished — per-cluster attribution
        // points at the right victim.
        assert!(!soc.cluster_completed(0));
        assert!(soc.cluster_completed(1));
        assert_eq!(soc.fault_stats().dispatch_drop, 1);
    }

    #[test]
    fn dead_cluster_never_completes_and_is_attributed() {
        let mut soc = small_soc(2);
        let mut plan = FaultPlan::with_seed(1);
        plan.dead_clusters = 1 << 1;
        soc.install_faults(plan);
        for c in 0..2 {
            soc.bind_job(c, nop_job(CompletionSignal::Credit, 2));
        }
        soc.begin_jobs();
        soc.submit_job(credit_program(2), ClusterMask::first(2), Cycle::ZERO)
            .unwrap();
        assert!(matches!(
            soc.advance_jobs(Cycle::MAX).unwrap(),
            SessionProgress::Idle
        ));
        assert!(soc.cluster_completed(0));
        assert!(!soc.cluster_completed(1));
        assert_eq!(soc.fault_stats().dead_cluster, 1);
    }

    #[test]
    fn corrupted_dma_burst_flags_the_completion() {
        let build = |plan: FaultPlan| {
            let mut cfg = SocConfig::with_clusters(1);
            cfg.cores_per_cluster = 1;
            let mut soc = Soc::new(cfg).unwrap();
            let base = soc.map().main_base();
            soc.main_mut()
                .store_mut()
                .write_f64_slice(base, &[3.0, 4.0])
                .unwrap();
            soc.install_faults(plan);

            // y[i] = a * x[i] over two DMA-ed words (see
            // dma_moves_real_data_and_cores_compute).
            let mut b = ProgramBuilder::new();
            let (x1, x2, x4) = (IntReg::new(1), IntReg::new(2), IntReg::new(4));
            b.li(x1, 0);
            b.li(x2, 16);
            b.li(x4, 80);
            b.fld(FpReg::new(31), x4, 0);
            for i in 0..2 {
                b.fld(FpReg::new(0), x1, i * 8);
                b.fmul(FpReg::new(1), FpReg::new(31), FpReg::new(0));
                b.fsd(FpReg::new(1), x2, i * 8);
            }
            b.halt();
            let program = b.build().unwrap();
            let job = ClusterJob::single(
                vec![program],
                vec![Transfer {
                    main_addr: base,
                    local_word: 0,
                    words: 2,
                }],
                vec![Transfer {
                    main_addr: base.add_words(8),
                    local_word: 2,
                    words: 2,
                }],
                vec![10.0],
                10,
                CompletionSignal::Credit,
            );
            soc.bind_job(0, job);
            soc.begin_jobs();
            soc.submit_job(credit_program(1), ClusterMask::single(0), Cycle::ZERO)
                .unwrap();
            let done = match soc.advance_jobs(Cycle::MAX).unwrap() {
                SessionProgress::Completed(c) => c,
                other => panic!("expected a completion, got {other:?}"),
            };
            let result = soc
                .main()
                .store()
                .read_f64_slice(base.add_words(8), 2)
                .unwrap();
            (done, result)
        };

        let (clean, result) = build(FaultPlan::none());
        assert_eq!(clean.corrupt_clusters, 0);
        assert_eq!(clean.faults_injected, 0);
        assert_eq!(result, vec![30.0, 40.0]);

        let mut plan = FaultPlan::with_seed(1);
        plan.dma_corrupt = crate::SiteSpec::once_at(0);
        let (flagged, corrupt) = build(plan);
        // The CRC flag is raised (the observable recovery signal) and
        // the corrupted operand really poisons the result.
        assert_eq!(flagged.corrupt_clusters, 1);
        assert_eq!(flagged.faults_injected, 1);
        assert_ne!(corrupt, vec![30.0, 40.0]);
        // Timing is untouched: corruption is silent in the time domain.
        assert_eq!(flagged.outcome.total, clean.outcome.total);
    }

    #[test]
    fn flaky_cluster_corrupts_only_its_own_bursts() {
        let mut cfg = SocConfig::with_clusters(2);
        cfg.cores_per_cluster = 1;
        let mut soc = Soc::new(cfg).unwrap();
        let base = soc.map().main_base();
        soc.main_mut()
            .store_mut()
            .write_f64_slice(base, &[1.0, 2.0])
            .unwrap();
        let mut plan = FaultPlan::with_seed(3);
        plan.flaky_clusters = 1 << 1;
        plan.flaky_corrupt_rate = 1.0;
        soc.install_faults(plan);
        for c in 0..2 {
            let job = ClusterJob::single(
                vec![nop_program()],
                vec![Transfer {
                    main_addr: base,
                    local_word: 0,
                    words: 2,
                }],
                vec![],
                vec![],
                0,
                CompletionSignal::Credit,
            );
            soc.bind_job(c, job);
        }
        soc.begin_jobs();
        soc.submit_job(credit_program(2), ClusterMask::first(2), Cycle::ZERO)
            .unwrap();
        let done = match soc.advance_jobs(Cycle::MAX).unwrap() {
            SessionProgress::Completed(c) => c,
            other => panic!("expected a completion, got {other:?}"),
        };
        // Both clusters moved the same data, but only the flaky one's
        // CRC flags corruption — the cluster-correlated signature the
        // scheduler's strike accounting keys on.
        assert_eq!(done.corrupt_clusters, 1 << 1);
        assert_eq!(done.faults_injected, 1);
        assert_eq!(soc.fault_stats().dma_corrupt, 1);
    }

    #[test]
    fn stalled_dma_burst_completes_late_but_intact() {
        let run = |plan: FaultPlan| {
            let mut cfg = SocConfig::with_clusters(1);
            cfg.cores_per_cluster = 2;
            let mut soc = Soc::new(cfg).unwrap();
            let base = soc.map().main_base();
            soc.main_mut()
                .store_mut()
                .write_f64_slice(base, &[1.0, 2.0])
                .unwrap();
            soc.install_faults(plan);
            let job = ClusterJob::single(
                vec![nop_program(); 2],
                vec![Transfer {
                    main_addr: base,
                    local_word: 0,
                    words: 2,
                }],
                vec![],
                vec![],
                0,
                CompletionSignal::Credit,
            );
            soc.bind_job(0, job);
            soc.run_offload(credit_program(1), ClusterMask::single(0))
                .unwrap()
        };
        let clean = run(FaultPlan::none());
        let mut plan = FaultPlan::with_seed(1);
        plan.dma_stall = crate::SiteSpec::once_at(0);
        plan.dma_stall_cycles = 500;
        let stalled = run(plan);
        assert_eq!(
            stalled.total,
            clean.total + Cycle::new(500),
            "the stall shifts completion by exactly the timeout"
        );
    }
}
