//! The assembled SoC and its event-driven offload execution.

use mpsoc_isa::{Interpreter, MemoryPort, PortError};
use mpsoc_mem::{Addr, ClusterReg, MainMemory, MemoryMap, Tcdm};
use mpsoc_noc::{ClusterMask, Interconnect};
use mpsoc_sim::stats::StatsRegistry;
use mpsoc_sim::trace::Tracer;
use mpsoc_sim::{Cycle, Engine, RunResult, Scheduler, Simulate, StepBudget};
use mpsoc_telemetry::{EventKind, EventTrace, PhaseBreakdown, Unit};

use crate::cluster::ClusterState;
use crate::energy::EnergyActivity;
use crate::host::{HostOp, HostState, HostStatus};
use crate::{
    ClusterJob, ClusterPhase, HostProgram, OffloadOutcome, PhaseTimestamps, SocConfig, SocError,
};

/// Simulation events of the SoC.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SocEvent {
    /// The host executes its next runtime op.
    HostStep,
    /// One iteration of the host's software-barrier polling loop.
    HostPoll,
    /// The credit-counter completion interrupt reaches the host.
    HostIrq,
    /// A posted store arrives at a cluster mailbox register.
    MailboxWrite {
        /// Target cluster.
        cluster: usize,
        /// Target register.
        reg: ClusterReg,
        /// Stored value.
        value: u64,
    },
    /// The cluster controller finished waking from the doorbell.
    ClusterWake {
        /// Cluster index.
        cluster: usize,
    },
    /// The cluster fetched and decoded the job descriptor.
    ClusterDesc {
        /// Cluster index.
        cluster: usize,
    },
    /// The cluster's DMA engine pumps its next burst.
    DmaBurst {
        /// Cluster index.
        cluster: usize,
    },
    /// A cluster DMA task (one stage, one direction) finished.
    ClusterDmaTaskDone {
        /// Cluster index.
        cluster: usize,
        /// Pipeline stage index.
        stage: usize,
        /// Transfer direction.
        dir: DmaDirection,
    },
    /// All worker cores of the cluster halted for one stage.
    ClusterComputeDone {
        /// Cluster index.
        cluster: usize,
        /// Pipeline stage index.
        stage: usize,
    },
    /// A completion credit arrives at the credit-counter unit.
    CreditArrive {
        /// Originating cluster.
        cluster: usize,
    },
    /// A completion AMO arrives at the main-memory atomic unit.
    BarrierArrive {
        /// Originating cluster.
        cluster: usize,
        /// Barrier counter address.
        addr: Addr,
    },
}

/// Adapts a cluster TCDM to the core interpreter's [`MemoryPort`].
struct TcdmPort<'a> {
    tcdm: &'a mut Tcdm,
}

impl MemoryPort for TcdmPort<'_> {
    fn load(&mut self, addr: u64) -> Result<f64, PortError> {
        if addr % 8 != 0 {
            return Err(PortError { addr });
        }
        self.tcdm.read_f64(addr / 8).map_err(|_| PortError { addr })
    }

    fn store(&mut self, addr: u64, value: f64) -> Result<(), PortError> {
        if addr % 8 != 0 {
            return Err(PortError { addr });
        }
        self.tcdm
            .write_f64(addr / 8, value)
            .map_err(|_| PortError { addr })
    }

    fn grant(&mut self, addr: u64, at: Cycle) -> Cycle {
        self.tcdm.access(addr / 8, at)
    }
}

/// Direction of a cluster DMA task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DmaDirection {
    /// Main memory → TCDM.
    In,
    /// TCDM → main memory.
    Out,
}

/// Per-cluster DMA chain state.
#[derive(Debug, Clone, Copy)]
struct DmaChain {
    stage: usize,
    dir: DmaDirection,
    remaining: u64,
    resume_slot: u64,
}

/// The simulated heterogeneous MPSoC.
///
/// Construct with [`Soc::new`], load operand data through
/// [`Soc::main_mut`], bind one [`ClusterJob`] per selected cluster with
/// [`Soc::bind_job`], then execute a [`HostProgram`] with
/// [`Soc::run_offload`]. See the crate-level example.
#[derive(Debug)]
pub struct Soc {
    config: SocConfig,
    map: MemoryMap,
    main: MainMemory,
    noc: Interconnect,
    credit: crate::CreditCounter,
    clusters: Vec<ClusterState>,
    tcdms: Vec<Tcdm>,
    dma: Vec<Option<DmaChain>>,
    host: Option<HostState>,
    irq_pending: bool,
    phases: PhaseTimestamps,
    activity: EnergyActivity,
    stats: StatsRegistry,
    tracer: Tracer,
    telemetry: EventTrace,
    fatal: Option<SocError>,
}

impl Soc {
    /// Builds a SoC from a configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SocError::Config`] if the configuration is inconsistent.
    pub fn new(config: SocConfig) -> Result<Self, SocError> {
        config
            .validate()
            .map_err(|reason| SocError::Config { reason })?;
        let map = MemoryMap::with_tcdm_words(config.clusters, config.main_words, config.tcdm_words);
        let main = MainMemory::new(
            map.main_base(),
            config.main_words,
            config.mem_words_per_cycle,
            Cycle::new(config.mem_latency),
            Cycle::new(config.amo_service),
        );
        let noc = Interconnect::new(config.noc, config.clusters);
        let tcdms = (0..config.clusters)
            .map(|_| Tcdm::new(config.tcdm_words, config.tcdm_banks, config.bank_mode))
            .collect();
        let clusters = vec![ClusterState::default(); config.clusters];
        let dma = vec![None; config.clusters];
        Ok(Soc {
            config,
            map,
            main,
            noc,
            credit: crate::CreditCounter::new(),
            clusters,
            tcdms,
            dma,
            host: None,
            irq_pending: false,
            phases: PhaseTimestamps::default(),
            activity: EnergyActivity::default(),
            stats: StatsRegistry::new(),
            tracer: Tracer::disabled(),
            telemetry: EventTrace::disabled(),
            fatal: None,
        })
    }

    /// The configuration in effect.
    pub fn config(&self) -> &SocConfig {
        &self.config
    }

    /// The SoC address map.
    pub fn map(&self) -> &MemoryMap {
        &self.map
    }

    /// Shared access to main memory (inspect results after an offload).
    pub fn main(&self) -> &MainMemory {
        &self.main
    }

    /// Mutable access to main memory (load operands before an offload).
    pub fn main_mut(&mut self) -> &mut MainMemory {
        &mut self.main
    }

    /// Collected statistics of the last offload.
    pub fn stats(&self) -> &StatsRegistry {
        &self.stats
    }

    /// Enables event tracing with the given record capacity.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.tracer = Tracer::enabled(capacity);
    }

    /// The trace collected during the last offload.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Enables typed-event telemetry with the given event capacity.
    ///
    /// When disabled (the default) every recording site is a single
    /// branch, so simulated timing and results are byte-identical with
    /// and without telemetry.
    pub fn enable_telemetry(&mut self, capacity: usize) {
        self.telemetry = EventTrace::enabled(capacity);
    }

    /// The typed-event trace collected during the last offload (empty
    /// unless [`Soc::enable_telemetry`] was called).
    pub fn telemetry(&self) -> &EventTrace {
        &self.telemetry
    }

    /// Installs the job `cluster` will execute when its doorbell rings.
    ///
    /// # Panics
    ///
    /// Panics if `cluster` is out of range.
    pub fn bind_job(&mut self, cluster: usize, job: ClusterJob) {
        self.clusters[cluster].job = Some(job);
    }

    fn desc_fetch_cycles(&self) -> u64 {
        // Descriptor reads are small and served by a shared cache at the
        // tree root: constant latency, no bandwidth-queue serialization
        // (see DESIGN.md, "Calibration targets").
        self.noc.config().hop_latency.as_u64() * u64::from(self.noc.levels()) * 2
            + self.config.mem_latency
            + self
                .config
                .descriptor_words
                .div_ceil(self.config.mem_words_per_cycle)
    }

    fn trace(&mut self, at: Cycle, unit: &str, msg: impl Into<String>) {
        self.tracer.record(at, unit, msg);
    }

    fn fail(&mut self, error: SocError) {
        if self.fatal.is_none() {
            self.fatal = Some(error);
        }
    }

    /// Starts one DMA task (one stage, one direction) on `cluster`'s
    /// engine; data is moved eagerly (the timing model alone decides
    /// *when* it completes).
    fn start_dma_task(
        &mut self,
        sched: &mut Scheduler<SocEvent>,
        at: Cycle,
        cluster: usize,
        stage: usize,
        dir: DmaDirection,
    ) -> Result<(), SocError> {
        let job = self.clusters[cluster].job.as_ref().expect("job bound");
        let transfers = match dir {
            DmaDirection::In => job.stages[stage].dma_in.clone(),
            DmaDirection::Out => job.stages[stage].dma_out.clone(),
        };
        let mut total = 0;
        for t in &transfers {
            match dir {
                DmaDirection::In => {
                    self.tcdms[cluster].dma_in(
                        self.main.store(),
                        t.main_addr,
                        t.local_word,
                        t.words,
                    )?;
                }
                DmaDirection::Out => {
                    let tcdm = &self.tcdms[cluster];
                    tcdm.dma_out(self.main.store_mut(), t.local_word, t.main_addr, t.words)?;
                }
            }
            total += t.words;
        }
        self.activity.dma_words += total;
        if total == 0 {
            sched.schedule_at(
                at,
                SocEvent::ClusterDmaTaskDone {
                    cluster,
                    stage,
                    dir,
                },
            );
            return Ok(());
        }
        self.dma[cluster] = Some(DmaChain {
            stage,
            dir,
            remaining: total,
            resume_slot: 0, // initialized on the first burst
        });
        sched.schedule_at(at, SocEvent::DmaBurst { cluster });
        Ok(())
    }

    fn handle_dma_burst(&mut self, sched: &mut Scheduler<SocEvent>, now: Cycle, cluster: usize) {
        let Some(mut chain) = self.dma[cluster] else {
            return;
        };
        let width = self.config.dma_words_per_cycle;
        let burst = chain.remaining.min(width);
        let min_slot = if chain.resume_slot == 0 {
            self.main.bandwidth_slot_of(now)
        } else {
            chain.resume_slot.max(self.main.bandwidth_slot_of(now))
        };
        let (end_slot, done) = self.main.acquire_bandwidth_slots(min_slot, burst);
        chain.resume_slot = end_slot;
        chain.remaining -= burst;
        if chain.remaining > 0 {
            self.dma[cluster] = Some(chain);
            sched.schedule_at(
                done.max(now + Cycle::new(1)),
                SocEvent::DmaBurst { cluster },
            );
        } else {
            self.dma[cluster] = None;
            let finish = done + Cycle::new(self.config.mem_latency);
            sched.schedule_at(
                finish,
                SocEvent::ClusterDmaTaskDone {
                    cluster,
                    stage: chain.stage,
                    dir: chain.dir,
                },
            );
        }
    }

    /// Runs every worker core of `cluster` over `stage`'s programs from
    /// `start`; returns the latest finish time.
    fn run_cores(&mut self, start: Cycle, cluster: usize, stage: usize) -> Result<Cycle, SocError> {
        let job = self.clusters[cluster].job.clone().expect("job bound");
        let interpreter = Interpreter::with_timing(self.config.core_timing);
        let mut latest = start;
        for (core, program) in job.stages[stage].programs.iter().enumerate() {
            let mut port = TcdmPort {
                tcdm: &mut self.tcdms[cluster],
            };
            let report = interpreter
                .run_from(program, start, &mut port)
                .map_err(|error| SocError::Core {
                    cluster,
                    core,
                    error,
                })?;
            latest = latest.max(report.finish);
            self.activity.core_ops += report.retired;
            self.clusters[cluster].core_reports.push(report);
        }
        Ok(latest)
    }

    /// The cluster pipeline scheduler: starts whatever DMA task and
    /// compute stage are ready, and posts the completion signal once
    /// every stage has drained.
    ///
    /// DMA policy: one engine, FCFS over ready tasks, earliest stage
    /// first; a ready DMA-out wins a tie against a later stage's DMA-in
    /// (draining frees the stage buffer).
    fn cluster_dispatch(&mut self, sched: &mut Scheduler<SocEvent>, at: Cycle, cluster: usize) {
        let stage_count = self.clusters[cluster].stages.len();

        // 1. DMA engine.
        if !self.clusters[cluster].dma_busy {
            // In(k) may only start once the buffer it writes (parity
            // k mod 2) is fully drained: stage k−2 computed *and* wrote
            // back. This is the double-buffering hazard gate.
            let stages = &self.clusters[cluster].stages;
            let next_in = stages.iter().enumerate().position(|(k, s)| {
                !s.in_started && (k < 2 || (stages[k - 2].compute_done && stages[k - 2].out_done))
            });
            let next_out = stages.iter().position(|s| s.compute_done && !s.out_started);
            let choice = match (next_in, next_out) {
                (Some(i), Some(o)) => Some(if o <= i {
                    (o, DmaDirection::Out)
                } else {
                    (i, DmaDirection::In)
                }),
                (Some(i), None) => Some((i, DmaDirection::In)),
                (None, Some(o)) => Some((o, DmaDirection::Out)),
                (None, None) => None,
            };
            if let Some((stage, dir)) = choice {
                {
                    let progress = &mut self.clusters[cluster].stages[stage];
                    match dir {
                        DmaDirection::In => progress.in_started = true,
                        DmaDirection::Out => progress.out_started = true,
                    }
                }
                self.clusters[cluster].dma_busy = true;
                let kind = match dir {
                    DmaDirection::In => EventKind::DmaIn,
                    DmaDirection::Out => EventKind::DmaOut,
                };
                self.clusters[cluster].dma_span =
                    self.telemetry
                        .begin(at, Unit::ClusterDma(cluster as u32), kind);
                if let Err(e) = self.start_dma_task(sched, at, cluster, stage, dir) {
                    self.fail(e);
                    return;
                }
            }
        }

        // 2. Worker cores: stages compute in order, each gated on its
        //    DMA-in.
        if !self.clusters[cluster].compute_busy {
            let next = self.clusters[cluster]
                .stages
                .iter()
                .position(|s| !s.compute_started);
            if let Some(stage) = next {
                if self.clusters[cluster].stages[stage].in_done {
                    self.clusters[cluster].stages[stage].compute_started = true;
                    self.clusters[cluster].compute_busy = true;
                    self.clusters[cluster].phase = ClusterPhase::Computing;
                    let start = at + Cycle::new(self.config.core_start_cycles);
                    self.clusters[cluster].compute_span = self.telemetry.begin(
                        start,
                        Unit::ClusterCores(cluster as u32),
                        EventKind::Compute,
                    );
                    let conflicts_before = self.tcdms[cluster].conflicts();
                    match self.run_cores(start, cluster, stage) {
                        Ok(finish) => {
                            let conflicts = self.tcdms[cluster].conflicts() - conflicts_before;
                            if conflicts > 0 {
                                self.telemetry.instant(
                                    start,
                                    Unit::ClusterCores(cluster as u32),
                                    EventKind::TcdmConflict,
                                    conflicts,
                                );
                            }
                            sched.schedule_at(
                                finish,
                                SocEvent::ClusterComputeDone { cluster, stage },
                            );
                        }
                        Err(e) => {
                            self.fail(e);
                            return;
                        }
                    }
                }
            }
        }

        // 3. Completion.
        let all_done = stage_count > 0 && self.clusters[cluster].stages.iter().all(|s| s.out_done);
        if all_done && !self.clusters[cluster].completed {
            self.clusters[cluster].completed = true;
            self.clusters[cluster].phase = ClusterPhase::Done;
            let job = self.clusters[cluster].job.as_ref().expect("job bound");
            match job.completion {
                crate::CompletionSignal::Credit => {
                    let arrive = self.noc.credit_upstream(at, cluster);
                    sched.schedule_at(arrive, SocEvent::CreditArrive { cluster });
                }
                crate::CompletionSignal::Barrier { addr } => {
                    let arrive = self.noc.cluster_upstream(at, cluster);
                    sched.schedule_at(arrive, SocEvent::BarrierArrive { cluster, addr });
                }
            }
        }
    }

    fn host_step(&mut self, sched: &mut Scheduler<SocEvent>, now: Cycle) {
        let Some(host) = &mut self.host else {
            return;
        };
        let Some(op) = host.current().cloned() else {
            self.fail(SocError::HostStalled {
                pc: self.host.as_ref().map_or(0, |h| h.pc),
            });
            return;
        };
        match op {
            HostOp::Compute(cycles) => {
                host.pc += 1;
                host.busy_cycles += cycles;
                sched.schedule_at(now + Cycle::new(cycles), SocEvent::HostStep);
            }
            HostOp::WriteWords { addr, values } => {
                host.pc += 1;
                host.busy_cycles += values.len() as u64;
                let count = values.len() as u64;
                let next = now + Cycle::new(count);
                for (i, v) in values.iter().enumerate() {
                    if let Err(e) = self
                        .main
                        .store_mut()
                        .write_u64(addr.add_words(i as u64), *v)
                    {
                        self.fail(e.into());
                        return;
                    }
                }
                self.main.transfer(now, count);
                self.activity.mem_words += count;
                sched.schedule_at(next, SocEvent::HostStep);
            }
            HostOp::PrepareOperands { words } => {
                host.pc += 1;
                let cycles = words.div_ceil(self.config.host_prep_words_per_cycle);
                host.busy_cycles += cycles;
                self.main.transfer(now, words);
                self.activity.mem_words += words;
                sched.schedule_at(now + Cycle::new(cycles), SocEvent::HostStep);
            }
            HostOp::StoreMailbox {
                cluster,
                reg,
                value,
            } => {
                host.pc += 1;
                let d = self.noc.host_unicast(now, cluster);
                self.activity.noc_stores += 1;
                self.telemetry
                    .instant(now, Unit::Host, EventKind::DispatchStart, cluster as u64);
                let stall = d
                    .injected
                    .saturating_sub(now + self.noc.config().inject_cycles);
                if stall > Cycle::ZERO {
                    self.telemetry
                        .instant(now, Unit::Noc, EventKind::NocStall, stall.as_u64());
                }
                sched.schedule_at(
                    d.delivered,
                    SocEvent::MailboxWrite {
                        cluster,
                        reg,
                        value,
                    },
                );
                sched.schedule_at(d.injected, SocEvent::HostStep);
            }
            HostOp::MulticastMailbox { mask, reg, value } => {
                host.pc += 1;
                let mc = self.noc.host_multicast(now, mask);
                self.activity.noc_stores += mc.delivered.len() as u64;
                self.telemetry.instant(
                    now,
                    Unit::Host,
                    EventKind::DispatchStart,
                    mc.delivered.len() as u64,
                );
                let stall = mc
                    .injected
                    .saturating_sub(now + self.noc.config().inject_cycles);
                if stall > Cycle::ZERO {
                    self.telemetry
                        .instant(now, Unit::Noc, EventKind::NocStall, stall.as_u64());
                }
                for (cluster, at) in &mc.delivered {
                    sched.schedule_at(
                        *at,
                        SocEvent::MailboxWrite {
                            cluster: *cluster,
                            reg,
                            value,
                        },
                    );
                }
                sched.schedule_at(mc.injected, SocEvent::HostStep);
            }
            HostOp::CreditArm { threshold } => {
                host.pc += 1;
                self.credit.arm(threshold);
                self.irq_pending = false;
                self.activity.sync_ops += 1;
                self.telemetry
                    .instant(now, Unit::CreditUnit, EventKind::CreditArm, threshold);
                let injected = now + self.noc.config().inject_cycles;
                sched.schedule_at(injected, SocEvent::HostStep);
            }
            HostOp::StoreUncachedMain { addr, value } => {
                host.pc += 1;
                if let Err(e) = self.main.store_mut().write_u64(addr, value) {
                    self.fail(e.into());
                    return;
                }
                self.main.transfer(now, 1);
                self.activity.mem_words += 1;
                let injected = now + self.noc.config().inject_cycles;
                sched.schedule_at(injected, SocEvent::HostStep);
            }
            HostOp::PollUntilEq { .. } => {
                host.status = HostStatus::Polling;
                sched.schedule_at(now, SocEvent::HostPoll);
            }
            HostOp::WaitIrq => {
                if self.irq_pending {
                    self.irq_pending = false;
                    host.pc += 1;
                    sched.schedule_at(now, SocEvent::HostStep);
                } else {
                    host.status = HostStatus::WaitingIrq;
                }
            }
            HostOp::End => {
                host.status = HostStatus::Done(now);
            }
        }
    }

    fn host_poll(&mut self, sched: &mut Scheduler<SocEvent>, now: Cycle) {
        let Some(host) = &self.host else { return };
        let Some(HostOp::PollUntilEq {
            addr,
            value,
            spin_cycles,
        }) = host.current().cloned()
        else {
            return;
        };
        // The poll is a single-word uncached read on the configuration
        // sideband: it pays the full NoC round trip plus the memory
        // latency but does not contend with bulk DMA bandwidth (one word
        // against a 512-word/cycle HBM system).
        let one_way = self.noc.config().hop_latency * u64::from(self.noc.levels());
        let observed = match self.main.store().read_u64(addr) {
            Ok(v) => v,
            Err(e) => {
                self.fail(e.into());
                return;
            }
        };
        let arrival = now + one_way * 2 + Cycle::new(self.config.mem_latency);
        self.activity.sync_ops += 1;
        self.telemetry
            .instant(now, Unit::Host, EventKind::BarrierPoll, observed);
        let host = self.host.as_mut().expect("host present");
        host.poll_iterations += 1;
        host.busy_cycles += spin_cycles;
        if observed == value {
            self.phases.sync_done = arrival;
            host.pc += 1;
            host.status = HostStatus::Running;
            sched.schedule_at(arrival, SocEvent::HostStep);
        } else {
            sched.schedule_at(arrival + Cycle::new(spin_cycles), SocEvent::HostPoll);
        }
    }
}

impl Simulate for Soc {
    type Event = SocEvent;

    fn handle(&mut self, sched: &mut Scheduler<SocEvent>, now: Cycle, event: SocEvent) {
        if self.fatal.is_some() {
            return;
        }
        match event {
            SocEvent::HostStep => self.host_step(sched, now),
            SocEvent::HostPoll => self.host_poll(sched, now),
            SocEvent::HostIrq => {
                self.phases.sync_done = now;
                self.telemetry.instant(now, Unit::Host, EventKind::Irq, 0);
                let Some(host) = &mut self.host else { return };
                match host.status {
                    HostStatus::WaitingIrq => {
                        host.status = HostStatus::Running;
                        host.pc += 1;
                        sched.schedule_at(now, SocEvent::HostStep);
                    }
                    _ => {
                        // IRQ raced ahead of WaitIrq; latch it.
                        self.irq_pending = true;
                    }
                }
            }
            SocEvent::MailboxWrite {
                cluster,
                reg,
                value,
            } => {
                self.trace(
                    now,
                    "noc",
                    format!("mailbox[{cluster}].{reg:?} <- {value:#x}"),
                );
                match reg {
                    ClusterReg::JobPtr => {
                        self.clusters[cluster].mailbox_job_ptr = value;
                    }
                    ClusterReg::Wakeup => {
                        self.phases.last_dispatch = self.phases.last_dispatch.max(now);
                        self.telemetry.instant(
                            now,
                            Unit::Cluster(cluster as u32),
                            EventKind::DispatchEnd,
                            0,
                        );
                        if self.clusters[cluster].phase == ClusterPhase::Idle {
                            if self.clusters[cluster].job.is_none() {
                                self.fail(SocError::MissingJob { cluster });
                                return;
                            }
                            self.clusters[cluster].phase = ClusterPhase::Waking;
                            self.clusters[cluster].timing.woken_at = now;
                            self.clusters[cluster].wake_span = self.telemetry.begin(
                                now,
                                Unit::Cluster(cluster as u32),
                                EventKind::Wake,
                            );
                            sched.schedule_at(
                                now + Cycle::new(self.config.cluster_wake_cycles),
                                SocEvent::ClusterWake { cluster },
                            );
                        }
                    }
                }
            }
            SocEvent::ClusterWake { cluster } => {
                self.clusters[cluster].phase = ClusterPhase::Fetching;
                let wake = std::mem::take(&mut self.clusters[cluster].wake_span);
                self.telemetry
                    .end(now, Unit::Cluster(cluster as u32), EventKind::Wake, wake);
                self.clusters[cluster].desc_span =
                    self.telemetry
                        .begin(now, Unit::Cluster(cluster as u32), EventKind::DescFetch);
                let fetched = now + Cycle::new(self.desc_fetch_cycles());
                self.activity.mem_words += self.config.descriptor_words;
                sched.schedule_at(fetched, SocEvent::ClusterDesc { cluster });
            }
            SocEvent::ClusterDesc { cluster } => {
                self.clusters[cluster].timing.desc_at = now;
                let desc = std::mem::take(&mut self.clusters[cluster].desc_span);
                self.telemetry.end(
                    now,
                    Unit::Cluster(cluster as u32),
                    EventKind::DescFetch,
                    desc,
                );
                self.clusters[cluster].phase = ClusterPhase::DmaIn;
                // Stage scalar args (plus the trailing zero word of the
                // kernel ABI) into the TCDM argument area.
                let job = self.clusters[cluster].job.clone().expect("job bound");
                let base = job.args_local_word;
                for (i, arg) in job.args.iter().enumerate() {
                    if let Err(e) = self.tcdms[cluster].write_f64(base + i as u64, *arg) {
                        self.fail(e.into());
                        return;
                    }
                }
                if let Err(e) = self.tcdms[cluster].write_f64(base + job.args.len() as u64, 0.0) {
                    self.fail(e.into());
                    return;
                }
                // Arm the pipeline and kick off the first stage.
                self.clusters[cluster].stages =
                    vec![crate::cluster::StageProgress::default(); job.stages.len()];
                self.clusters[cluster].dma_busy = false;
                self.clusters[cluster].compute_busy = false;
                self.clusters[cluster].completed = false;
                let t0 = now + Cycle::new(self.config.cluster_setup_cycles);
                self.cluster_dispatch(sched, t0, cluster);
            }
            SocEvent::DmaBurst { cluster } => self.handle_dma_burst(sched, now, cluster),
            SocEvent::ClusterDmaTaskDone {
                cluster,
                stage,
                dir,
            } => {
                self.clusters[cluster].dma_busy = false;
                let kind = match dir {
                    DmaDirection::In => EventKind::DmaIn,
                    DmaDirection::Out => EventKind::DmaOut,
                };
                let span = std::mem::take(&mut self.clusters[cluster].dma_span);
                self.telemetry
                    .end(now, Unit::ClusterDma(cluster as u32), kind, span);
                match dir {
                    DmaDirection::In => {
                        self.clusters[cluster].stages[stage].in_done = true;
                        self.clusters[cluster].timing.dma_in_at =
                            self.clusters[cluster].timing.dma_in_at.max(now);
                        if self.clusters[cluster].stages.iter().all(|s| s.in_done) {
                            self.phases.last_dma_in = self.phases.last_dma_in.max(now);
                        }
                    }
                    DmaDirection::Out => {
                        self.clusters[cluster].stages[stage].out_done = true;
                        self.clusters[cluster].timing.dma_out_at =
                            self.clusters[cluster].timing.dma_out_at.max(now);
                        if self.clusters[cluster].stages.iter().all(|s| s.out_done) {
                            self.phases.last_dma_out = self.phases.last_dma_out.max(now);
                        }
                    }
                }
                self.cluster_dispatch(sched, now, cluster);
            }
            SocEvent::ClusterComputeDone { cluster, stage } => {
                self.clusters[cluster].compute_busy = false;
                self.clusters[cluster].stages[stage].compute_done = true;
                let span = std::mem::take(&mut self.clusters[cluster].compute_span);
                self.telemetry.end(
                    now,
                    Unit::ClusterCores(cluster as u32),
                    EventKind::Compute,
                    span,
                );
                self.clusters[cluster].timing.compute_at =
                    self.clusters[cluster].timing.compute_at.max(now);
                if self.clusters[cluster].stages.iter().all(|s| s.compute_done) {
                    self.phases.last_compute = self.phases.last_compute.max(now);
                }
                self.cluster_dispatch(sched, now, cluster);
            }
            SocEvent::CreditArrive { cluster } => {
                self.clusters[cluster].timing.complete_at = now;
                self.activity.sync_ops += 1;
                self.stats.incr("credit.increments");
                self.telemetry.instant(
                    now,
                    Unit::CreditUnit,
                    EventKind::CreditReturn,
                    cluster as u64,
                );
                if let Some(fire_at) = self.credit.increment(now) {
                    sched.schedule_at(
                        fire_at + Cycle::new(self.config.irq_latency),
                        SocEvent::HostIrq,
                    );
                }
            }
            SocEvent::BarrierArrive { cluster, addr } => {
                self.clusters[cluster].timing.complete_at = now;
                self.activity.sync_ops += 1;
                self.stats.incr("barrier.amos");
                self.telemetry.instant(
                    now,
                    Unit::MainMem,
                    EventKind::BarrierArrive,
                    cluster as u64,
                );
                if let Err(e) = self.main.amo_add(now, addr, 1) {
                    self.fail(e.into());
                }
            }
        }
    }
}

impl Soc {
    /// Runs one offload: executes `program` on the host against the jobs
    /// bound to the clusters in `mask`, from cycle 0 to host completion.
    ///
    /// # Errors
    ///
    /// - [`SocError::MissingJob`] / [`SocError::ProgramCount`] for
    ///   inconsistent bindings,
    /// - [`SocError::Core`] / [`SocError::Memory`] for faults during
    ///   execution,
    /// - [`SocError::HostStalled`] if the simulation ends without the
    ///   host program reaching [`HostOp::End`] (e.g. a completion signal
    ///   that can never fire).
    pub fn run_offload(
        &mut self,
        program: HostProgram,
        mask: ClusterMask,
    ) -> Result<OffloadOutcome, SocError> {
        for cluster in mask.iter() {
            let state = &self.clusters[cluster];
            let Some(job) = &state.job else {
                return Err(SocError::MissingJob { cluster });
            };
            if job.stages.is_empty() {
                return Err(SocError::ProgramCount {
                    cluster,
                    got: 0,
                    want: self.config.cores_per_cluster,
                });
            }
            for stage in &job.stages {
                if stage.programs.len() != self.config.cores_per_cluster {
                    return Err(SocError::ProgramCount {
                        cluster,
                        got: stage.programs.len(),
                        want: self.config.cores_per_cluster,
                    });
                }
            }
        }

        // Reset per-offload state (data in main memory persists).
        self.host = Some(HostState::new(program));
        self.irq_pending = false;
        self.phases = PhaseTimestamps::default();
        self.activity = EnergyActivity::default();
        self.stats.clear();
        self.telemetry.clear();
        self.fatal = None;
        self.credit.reset();
        self.main.reset_timing();
        self.noc.reset();
        for cluster in &mut self.clusters {
            cluster.phase = ClusterPhase::Idle;
            cluster.timing = Default::default();
            cluster.core_reports.clear();
            cluster.stages.clear();
            cluster.dma_busy = false;
            cluster.compute_busy = false;
            cluster.completed = false;
            cluster.wake_span = 0;
            cluster.desc_span = 0;
            cluster.dma_span = 0;
            cluster.compute_span = 0;
        }
        for tcdm in &mut self.tcdms {
            tcdm.reset_timing();
        }
        self.dma.fill(None);

        let mut engine = Engine::new(&mut *self);
        engine.schedule_at(Cycle::ZERO, SocEvent::HostStep);
        // 50M events is far beyond any legitimate offload in this study;
        // hitting it means a stuck polling loop.
        let result = engine.run(StepBudget::events(50_000_000));
        let events_delivered = engine.events_delivered();
        drop(engine);

        if let Some(error) = self.fatal.take() {
            return Err(error);
        }
        let host = self.host.take().expect("host installed above");
        let total = match host.status {
            HostStatus::Done(at) => at,
            _ => {
                let _ = result; // quiescent or budget-exhausted: either way the host hung
                return Err(SocError::HostStalled { pc: host.pc });
            }
        };
        debug_assert_eq!(result, RunResult::Quiescent);

        self.phases.host_issue_done = self.phases.host_issue_done.max(self.phases.last_dispatch);
        self.activity.host_cycles = host.busy_cycles;
        self.activity.cluster_cycles = mask.count() as u64 * total.as_u64();
        let energy = self.config.energy.evaluate(&self.activity);

        let mut clusters = Vec::new();
        let mut core_reports = Vec::new();
        let mut tcdm_conflicts = 0;
        for cluster in mask.iter() {
            clusters.push((cluster, self.clusters[cluster].timing));
            core_reports.push(self.clusters[cluster].core_reports.clone());
            tcdm_conflicts += self.tcdms[cluster].conflicts();
        }

        // Fold per-resource contention counters from the NoC and the
        // main-memory system into the offload's registry under the
        // stable `contention.*` prefix.
        self.stats.merge(self.noc.stats());
        self.stats.merge(self.main.stats());
        self.stats
            .add("contention.tcdm.bank_conflicts", tcdm_conflicts);

        let phase_breakdown = PhaseBreakdown::from_milestones(
            self.phases.last_dispatch,
            self.phases.last_dma_in,
            self.phases.last_compute,
            self.phases.last_dma_out,
            total,
        );
        Ok(OffloadOutcome {
            total,
            phases: self.phases,
            phase_breakdown,
            clusters,
            core_reports,
            energy,
            host_busy_cycles: host.busy_cycles,
            poll_iterations: host.poll_iterations,
            tcdm_conflicts,
            events_delivered,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClusterJob, CompletionSignal, Transfer};
    use mpsoc_isa::{FpReg, IntReg, Program, ProgramBuilder};

    fn nop_program() -> Program {
        let mut b = ProgramBuilder::new();
        b.halt();
        b.build().unwrap()
    }

    fn nop_job(completion: CompletionSignal, cores: usize) -> ClusterJob {
        ClusterJob::single(
            vec![nop_program(); cores],
            vec![],
            vec![],
            vec![],
            0,
            completion,
        )
    }

    fn small_soc(clusters: usize) -> Soc {
        let mut cfg = SocConfig::with_clusters(clusters);
        cfg.cores_per_cluster = 2;
        Soc::new(cfg).unwrap()
    }

    #[test]
    fn credit_offload_round_trip() {
        let mut soc = small_soc(2);
        for c in 0..2 {
            soc.bind_job(c, nop_job(CompletionSignal::Credit, 2));
        }
        let program = HostProgram::new(vec![
            HostOp::Compute(50),
            HostOp::CreditArm { threshold: 2 },
            HostOp::MulticastMailbox {
                mask: ClusterMask::first(2),
                reg: ClusterReg::Wakeup,
                value: 1,
            },
            HostOp::WaitIrq,
            HostOp::Compute(60),
            HostOp::End,
        ]);
        let outcome = soc.run_offload(program, ClusterMask::first(2)).unwrap();
        assert!(outcome.total > Cycle::new(110));
        assert_eq!(outcome.clusters.len(), 2);
        assert_eq!(outcome.poll_iterations, 0);
        assert!(outcome.phases.sync_done > outcome.phases.last_dispatch);
        assert!(outcome.energy.total_pj() > 0.0);
    }

    #[test]
    fn barrier_offload_round_trip() {
        let mut soc = small_soc(2);
        let barrier = soc.map().main_base().add_words(100);
        for c in 0..2 {
            soc.bind_job(c, nop_job(CompletionSignal::Barrier { addr: barrier }, 2));
        }
        let program = HostProgram::new(vec![
            HostOp::StoreUncachedMain {
                addr: barrier,
                value: 0,
            },
            HostOp::StoreMailbox {
                cluster: 0,
                reg: ClusterReg::Wakeup,
                value: 1,
            },
            HostOp::StoreMailbox {
                cluster: 1,
                reg: ClusterReg::Wakeup,
                value: 1,
            },
            HostOp::PollUntilEq {
                addr: barrier,
                value: 2,
                spin_cycles: 4,
            },
            HostOp::End,
        ]);
        let outcome = soc.run_offload(program, ClusterMask::first(2)).unwrap();
        assert!(outcome.poll_iterations >= 1);
        assert_eq!(soc.main().store().read_u64(barrier).unwrap(), 2);
        assert!(outcome.total > Cycle::ZERO);
    }

    #[test]
    fn dma_moves_real_data_and_cores_compute() {
        // One cluster, one core: DMA in two words, scale by arg via a tiny
        // program, DMA result back out.
        let mut cfg = SocConfig::with_clusters(1);
        cfg.cores_per_cluster = 1;
        let mut soc = Soc::new(cfg).unwrap();
        let base = soc.map().main_base();
        soc.main_mut()
            .store_mut()
            .write_f64_slice(base, &[3.0, 4.0])
            .unwrap();

        // Program: y[i] = a * x[i] for 2 elements, all in TCDM.
        // Layout: x at words 0..2, result at 2..4, args at word 10.
        let mut b = ProgramBuilder::new();
        let (x1, x2, x4) = (IntReg::new(1), IntReg::new(2), IntReg::new(4));
        b.li(x1, 0);
        b.li(x2, 16);
        b.li(x4, 80);
        b.fld(FpReg::new(31), x4, 0);
        for i in 0..2 {
            b.fld(FpReg::new(0), x1, i * 8);
            b.fmul(FpReg::new(1), FpReg::new(31), FpReg::new(0));
            b.fsd(FpReg::new(1), x2, i * 8);
        }
        b.halt();
        let program = b.build().unwrap();

        let job = ClusterJob::single(
            vec![program],
            vec![Transfer {
                main_addr: base,
                local_word: 0,
                words: 2,
            }],
            vec![Transfer {
                main_addr: base.add_words(8),
                local_word: 2,
                words: 2,
            }],
            vec![10.0],
            10,
            CompletionSignal::Credit,
        );
        soc.bind_job(0, job);

        let hp = HostProgram::new(vec![
            HostOp::CreditArm { threshold: 1 },
            HostOp::StoreMailbox {
                cluster: 0,
                reg: ClusterReg::Wakeup,
                value: 1,
            },
            HostOp::WaitIrq,
            HostOp::End,
        ]);
        let outcome = soc.run_offload(hp, ClusterMask::single(0)).unwrap();
        let result = soc
            .main()
            .store()
            .read_f64_slice(base.add_words(8), 2)
            .unwrap();
        assert_eq!(result, vec![30.0, 40.0]);
        let (_, timing) = outcome.clusters[0];
        assert!(timing.dma_in_at > timing.desc_at);
        assert!(timing.compute_at > timing.dma_in_at);
        assert!(timing.dma_out_at > timing.compute_at);
        assert!(timing.complete_at > timing.dma_out_at);
        assert!(outcome.total > timing.complete_at);
    }

    #[test]
    fn missing_job_is_reported() {
        let mut soc = small_soc(2);
        soc.bind_job(0, nop_job(CompletionSignal::Credit, 2));
        let hp = HostProgram::new(vec![HostOp::End]);
        let err = soc.run_offload(hp, ClusterMask::first(2)).unwrap_err();
        assert!(matches!(err, SocError::MissingJob { cluster: 1 }));
    }

    #[test]
    fn wrong_program_count_is_reported() {
        let mut soc = small_soc(1);
        soc.bind_job(0, nop_job(CompletionSignal::Credit, 5));
        let hp = HostProgram::new(vec![HostOp::End]);
        let err = soc.run_offload(hp, ClusterMask::single(0)).unwrap_err();
        assert!(matches!(
            err,
            SocError::ProgramCount {
                cluster: 0,
                got: 5,
                want: 2
            }
        ));
    }

    #[test]
    fn host_waiting_for_impossible_irq_stalls() {
        let mut soc = small_soc(1);
        soc.bind_job(0, nop_job(CompletionSignal::Credit, 2));
        // Threshold 2 but only one cluster completes: the IRQ never fires.
        let hp = HostProgram::new(vec![
            HostOp::CreditArm { threshold: 2 },
            HostOp::StoreMailbox {
                cluster: 0,
                reg: ClusterReg::Wakeup,
                value: 1,
            },
            HostOp::WaitIrq,
            HostOp::End,
        ]);
        let err = soc.run_offload(hp, ClusterMask::single(0)).unwrap_err();
        assert!(matches!(err, SocError::HostStalled { .. }));
    }

    #[test]
    fn irq_racing_ahead_of_wait_is_latched() {
        let mut soc = small_soc(1);
        soc.bind_job(0, nop_job(CompletionSignal::Credit, 2));
        // A long Compute keeps the host busy past cluster completion, so
        // HostIrq is delivered while the host is still Running.
        let hp = HostProgram::new(vec![
            HostOp::CreditArm { threshold: 1 },
            HostOp::StoreMailbox {
                cluster: 0,
                reg: ClusterReg::Wakeup,
                value: 1,
            },
            HostOp::Compute(100_000),
            HostOp::WaitIrq,
            HostOp::End,
        ]);
        let outcome = soc.run_offload(hp, ClusterMask::single(0)).unwrap();
        assert!(outcome.total >= Cycle::new(100_000));
    }

    #[test]
    fn multiple_offloads_on_one_soc_are_independent() {
        let mut soc = small_soc(1);
        soc.bind_job(0, nop_job(CompletionSignal::Credit, 2));
        let hp = || {
            HostProgram::new(vec![
                HostOp::CreditArm { threshold: 1 },
                HostOp::StoreMailbox {
                    cluster: 0,
                    reg: ClusterReg::Wakeup,
                    value: 1,
                },
                HostOp::WaitIrq,
                HostOp::End,
            ])
        };
        let a = soc.run_offload(hp(), ClusterMask::single(0)).unwrap();
        let b = soc.run_offload(hp(), ClusterMask::single(0)).unwrap();
        assert_eq!(a.total, b.total, "offloads must be reproducible");
    }

    #[test]
    fn telemetry_trace_validates_and_phases_sum_to_total() {
        let mut soc = small_soc(2);
        for c in 0..2 {
            soc.bind_job(c, nop_job(CompletionSignal::Credit, 2));
        }
        soc.enable_telemetry(4096);
        let program = HostProgram::new(vec![
            HostOp::CreditArm { threshold: 2 },
            HostOp::MulticastMailbox {
                mask: ClusterMask::first(2),
                reg: ClusterReg::Wakeup,
                value: 1,
            },
            HostOp::WaitIrq,
            HostOp::End,
        ]);
        let outcome = soc.run_offload(program, ClusterMask::first(2)).unwrap();

        // The typed trace exports as schema-valid Chrome trace JSON.
        let json = mpsoc_telemetry::chrome_trace_json(soc.telemetry());
        let summary = mpsoc_telemetry::validate_chrome_trace(&json).expect("valid trace");
        assert!(summary.events > 0);
        assert!(summary.spans >= 4, "wake + desc-fetch spans per cluster");

        // Phase attribution sums exactly to the end-to-end runtime.
        let pb = outcome.phase_breakdown;
        assert_eq!(
            pb.dispatch + pb.dma_in + pb.compute + pb.dma_out + pb.sync,
            outcome.total.as_u64(),
            "no unattributed cycles"
        );
        assert!(pb.dispatch > 0);
        assert!(pb.sync > 0);
    }

    #[test]
    fn telemetry_does_not_perturb_timing() {
        let run = |telemetry: bool| {
            let mut soc = small_soc(2);
            for c in 0..2 {
                soc.bind_job(c, nop_job(CompletionSignal::Credit, 2));
            }
            if telemetry {
                soc.enable_telemetry(4096);
            }
            let program = HostProgram::new(vec![
                HostOp::CreditArm { threshold: 2 },
                HostOp::MulticastMailbox {
                    mask: ClusterMask::first(2),
                    reg: ClusterReg::Wakeup,
                    value: 1,
                },
                HostOp::WaitIrq,
                HostOp::End,
            ]);
            soc.run_offload(program, ClusterMask::first(2)).unwrap()
        };
        let plain = run(false);
        let traced = run(true);
        assert_eq!(plain.total, traced.total);
        assert_eq!(plain.phases, traced.phases);
        assert_eq!(plain.phase_breakdown, traced.phase_breakdown);
    }

    #[test]
    fn telemetry_trace_is_reproducible() {
        let run = || {
            let mut soc = small_soc(2);
            for c in 0..2 {
                soc.bind_job(c, nop_job(CompletionSignal::Credit, 2));
            }
            soc.enable_telemetry(4096);
            let program = HostProgram::new(vec![
                HostOp::CreditArm { threshold: 2 },
                HostOp::MulticastMailbox {
                    mask: ClusterMask::first(2),
                    reg: ClusterReg::Wakeup,
                    value: 1,
                },
                HostOp::WaitIrq,
                HostOp::End,
            ]);
            soc.run_offload(program, ClusterMask::first(2)).unwrap();
            mpsoc_telemetry::chrome_trace_json(soc.telemetry())
        };
        assert_eq!(run(), run(), "equal inputs must give byte-identical traces");
    }

    #[test]
    fn contention_counters_surface_in_offload_stats() {
        let mut soc = small_soc(8);
        for c in 0..8 {
            soc.bind_job(c, nop_job(CompletionSignal::Credit, 2));
        }
        let mut ops = vec![HostOp::CreditArm { threshold: 8 }];
        for c in 0..8 {
            ops.push(HostOp::StoreMailbox {
                cluster: c,
                reg: ClusterReg::Wakeup,
                value: 1,
            });
        }
        ops.push(HostOp::WaitIrq);
        ops.push(HostOp::End);
        soc.run_offload(HostProgram::new(ops), ClusterMask::first(8))
            .unwrap();
        // The per-resource registries are folded into the offload stats
        // under the stable prefix; the TCDM counter always exists.
        let names: Vec<&str> = soc
            .stats()
            .counters()
            .map(|(name, _)| name)
            .filter(|name| name.starts_with("contention."))
            .collect();
        assert!(names.contains(&"contention.tcdm.bank_conflicts"));
    }

    #[test]
    fn sequential_dispatch_wakes_clusters_later_than_multicast() {
        let run = |multicast: bool| {
            let mut soc = small_soc(8);
            for c in 0..8 {
                soc.bind_job(c, nop_job(CompletionSignal::Credit, 2));
            }
            let mut ops = vec![HostOp::CreditArm { threshold: 8 }];
            if multicast {
                ops.push(HostOp::MulticastMailbox {
                    mask: ClusterMask::first(8),
                    reg: ClusterReg::Wakeup,
                    value: 1,
                });
            } else {
                for c in 0..8 {
                    ops.push(HostOp::StoreMailbox {
                        cluster: c,
                        reg: ClusterReg::Wakeup,
                        value: 1,
                    });
                }
            }
            ops.push(HostOp::WaitIrq);
            ops.push(HostOp::End);
            soc.run_offload(HostProgram::new(ops), ClusterMask::first(8))
                .unwrap()
        };
        let seq = run(false);
        let mc = run(true);
        assert!(
            mc.phases.last_dispatch < seq.phases.last_dispatch,
            "multicast must deliver the last doorbell earlier"
        );
        assert!(mc.total < seq.total);
    }
}
