//! The host (CVA6-class) core: offload-runtime operations.

use mpsoc_mem::{Addr, ClusterReg};
use mpsoc_noc::ClusterMask;
use mpsoc_sim::Cycle;

/// One operation of the host-side offload routine.
///
/// The offload runtime compiles its dispatch/synchronization strategy
/// into a linear [`HostProgram`] of these ops; the SoC executes them with
/// cycle costs derived from the modeled hardware (injection-port
/// occupancy, NoC latencies, memory round trips).
#[derive(Debug, Clone, PartialEq)]
pub enum HostOp {
    /// Busy-compute for the given number of cycles (argument marshalling,
    /// loop bookkeeping, the interrupt service routine, ...).
    Compute(u64),
    /// Write a block of words to main memory through the write buffer
    /// (the job descriptor). Costs one cycle per word on the host plus
    /// main-memory bandwidth.
    WriteWords {
        /// Destination in main memory.
        addr: Addr,
        /// Raw words to write.
        values: Vec<u64>,
    },
    /// Serially prepare the job operands for accelerator access (cache
    /// flush / copy-in of inputs, allocation/invalidation of outputs) at
    /// the host's preparation throughput. For an `N`-element DAXPY this
    /// moves `3·N` words at 12 words/cycle — the paper's serial `N/4`
    /// data term, incurred identically by baseline and extended runtimes.
    PrepareOperands {
        /// Total operand words (inputs + outputs).
        words: u64,
    },
    /// Posted uncached store to one cluster's mailbox (baseline dispatch).
    StoreMailbox {
        /// Target cluster.
        cluster: usize,
        /// Target register.
        reg: ClusterReg,
        /// Value written.
        value: u64,
    },
    /// Posted multicast store to a mailbox register of every cluster in
    /// the mask (the paper's extension).
    MulticastMailbox {
        /// Selected clusters.
        mask: ClusterMask,
        /// Target register (same offset in every cluster).
        reg: ClusterReg,
        /// Value written.
        value: u64,
    },
    /// Program the credit-counter threshold and arm the unit.
    CreditArm {
        /// Number of completion credits to wait for.
        threshold: u64,
    },
    /// Write a word to main memory uncached (e.g. clearing the software
    /// barrier counter).
    StoreUncachedMain {
        /// Destination word address.
        addr: Addr,
        /// Value written.
        value: u64,
    },
    /// Spin-read a main-memory word until it equals `value` (the baseline
    /// software barrier). Each iteration pays the NoC/memory round trip
    /// plus `spin_cycles` of loop overhead.
    PollUntilEq {
        /// Polled word address.
        addr: Addr,
        /// Value to wait for.
        value: u64,
        /// Loop overhead per polling iteration.
        spin_cycles: u64,
    },
    /// Block until the credit-counter interrupt is delivered.
    WaitIrq,
    /// Offload routine complete; the timestamp of this op is the
    /// offload's end-to-end runtime.
    End,
}

/// A linear sequence of [`HostOp`]s: one offload routine.
#[derive(Debug, Clone, PartialEq)]
pub struct HostProgram {
    ops: Vec<HostOp>,
}

impl HostProgram {
    /// Wraps a sequence of ops.
    ///
    /// # Panics
    ///
    /// Panics if the program is empty or does not end in [`HostOp::End`].
    pub fn new(ops: Vec<HostOp>) -> Self {
        assert!(
            matches!(ops.last(), Some(HostOp::End)),
            "host program must end in HostOp::End"
        );
        HostProgram { ops }
    }

    /// The ops in execution order.
    pub fn ops(&self) -> &[HostOp] {
        &self.ops
    }

    /// Number of ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` when the program has no ops (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// What the host is doing right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum HostStatus {
    Running,
    WaitingIrq,
    Polling,
    Done(Cycle),
}

/// Internal host execution state.
#[derive(Debug, Clone)]
pub(crate) struct HostState {
    pub program: HostProgram,
    pub pc: usize,
    pub status: HostStatus,
    pub busy_cycles: u64,
    pub poll_iterations: u64,
}

impl HostState {
    pub fn new(program: HostProgram) -> Self {
        HostState {
            program,
            pc: 0,
            status: HostStatus::Running,
            busy_cycles: 0,
            poll_iterations: 0,
        }
    }

    pub fn current(&self) -> Option<&HostOp> {
        self.program.ops().get(self.pc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn program_requires_end() {
        let p = HostProgram::new(vec![HostOp::Compute(1), HostOp::End]);
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
    }

    #[test]
    #[should_panic(expected = "must end in HostOp::End")]
    fn missing_end_panics() {
        let _ = HostProgram::new(vec![HostOp::Compute(1)]);
    }

    #[test]
    #[should_panic(expected = "must end in HostOp::End")]
    fn empty_program_panics() {
        let _ = HostProgram::new(vec![]);
    }

    #[test]
    fn state_walks_ops() {
        let p = HostProgram::new(vec![HostOp::Compute(5), HostOp::End]);
        let mut s = HostState::new(p);
        assert!(matches!(s.current(), Some(HostOp::Compute(5))));
        s.pc += 1;
        assert!(matches!(s.current(), Some(HostOp::End)));
        s.pc += 1;
        assert!(s.current().is_none());
    }
}
