//! Results of one offload run.

use mpsoc_isa::ExecReport;
use mpsoc_sim::Cycle;
use mpsoc_telemetry::PhaseBreakdown;
use serde::{Deserialize, Serialize};

use crate::{ClusterTiming, EnergyReport};

/// Aggregate phase timestamps of one offload (absolute cycles from the
/// offload start at cycle 0).
///
/// These are *milestones*; the derived per-phase cycle attribution (a
/// [`PhaseBreakdown`] of durations summing exactly to the runtime) lives
/// in [`OffloadOutcome::phase_breakdown`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PhaseTimestamps {
    /// Host finished issuing all dispatch-side ops (began waiting).
    pub host_issue_done: Cycle,
    /// Last doorbell delivered to a selected cluster.
    pub last_dispatch: Cycle,
    /// Last cluster finished DMA-in.
    pub last_dma_in: Cycle,
    /// Last cluster's worker cores halted.
    pub last_compute: Cycle,
    /// Last cluster finished DMA-out.
    pub last_dma_out: Cycle,
    /// Completion observed by the host (IRQ delivered / poll hit).
    pub sync_done: Cycle,
}

/// Everything measured during one offload.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct OffloadOutcome {
    /// End-to-end offload runtime: host start to host notified. This is
    /// the quantity plotted in the paper's Fig. 1 (at 1 GHz, cycles == ns).
    pub total: Cycle,
    /// Aggregate phase timestamps.
    pub phases: PhaseTimestamps,
    /// Per-phase cycle attribution derived from the timestamps: the five
    /// phases sum exactly to [`OffloadOutcome::total`].
    pub phase_breakdown: PhaseBreakdown,
    /// Per-selected-cluster timing, as `(cluster_index, timing)` pairs in
    /// ascending cluster order.
    pub clusters: Vec<(usize, ClusterTiming)>,
    /// Per-selected-cluster worker-core execution reports (same order as
    /// [`OffloadOutcome::clusters`]).
    pub core_reports: Vec<Vec<ExecReport>>,
    /// Energy estimate.
    pub energy: EnergyReport,
    /// Host busy (non-waiting) cycles.
    pub host_busy_cycles: u64,
    /// Software-barrier polling iterations (0 with the credit counter).
    pub poll_iterations: u64,
    /// TCDM bank conflicts suffered across all clusters (always 0 in
    /// [`BankMode::Ideal`](mpsoc_mem::BankMode)).
    pub tcdm_conflicts: u64,
    /// Simulation events delivered (simulator health metric).
    pub events_delivered: u64,
}

impl OffloadOutcome {
    /// The offload overhead: total runtime minus the pure-compute span of
    /// the slowest cluster (a diagnostic, not a paper metric).
    pub fn overhead(&self) -> Cycle {
        let compute_span: Cycle = self
            .clusters
            .iter()
            .map(|(_, t)| t.compute_at.saturating_sub(t.dma_in_at))
            .max()
            .unwrap_or(Cycle::ZERO);
        self.total.saturating_sub(compute_span)
    }

    /// Total retired micro-ops across all worker cores.
    pub fn total_core_ops(&self) -> u64 {
        self.core_reports.iter().flatten().map(|r| r.retired).sum()
    }

    /// Renders a per-cluster ASCII timeline (Gantt-style) of the offload,
    /// `width` characters wide:
    ///
    /// ```text
    /// cluster  0 |..wwFFIIIICCCCCCOOs.........|
    /// ```
    ///
    /// Legend: `.` idle, `w` waking, `F` descriptor fetch + setup,
    /// `I` DMA-in, `C` compute, `O` DMA-out, `s` completion signaling.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn render_timeline(&self, width: usize) -> String {
        assert!(width > 0, "timeline width must be positive");
        let total = self.total.as_u64().max(1);
        let bucket = |t: Cycle| -> usize {
            ((t.as_u64().min(total)) as usize * width) / (total as usize + 1)
        };
        let mut out = String::new();
        out.push_str(&format!(
            "offload timeline: 1 column ≈ {:.1} cycles, total {} cycles\n",
            total as f64 / width as f64,
            total
        ));
        for &(cluster, t) in &self.clusters {
            let mut row = vec!['.'; width];
            let mut paint = |from: Cycle, to: Cycle, ch: char| {
                let (a, b) = (bucket(from), bucket(to));
                for cell in row
                    .iter_mut()
                    .take(b.max(a + usize::from(to > from)).min(width))
                    .skip(a)
                {
                    *cell = ch;
                }
            };
            paint(t.woken_at, t.desc_at, 'w');
            // Fetch+setup ends where DMA-in begins; we approximate the
            // boundary with desc_at (setup is folded into 'F').
            paint(t.desc_at, t.dma_in_at, 'I');
            paint(t.dma_in_at, t.compute_at, 'C');
            paint(t.compute_at, t.dma_out_at, 'O');
            paint(t.dma_out_at, t.complete_at, 's');
            out.push_str(&format!("cluster {cluster:>2} |"));
            out.extend(row);
            out.push_str("|\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_outcome_is_empty() {
        let o = OffloadOutcome::default();
        assert_eq!(o.total, Cycle::ZERO);
        assert_eq!(o.overhead(), Cycle::ZERO);
        assert_eq!(o.total_core_ops(), 0);
    }

    #[test]
    fn overhead_subtracts_compute_span() {
        let mut o = OffloadOutcome {
            total: Cycle::new(1000),
            ..Default::default()
        };
        let timing = ClusterTiming {
            dma_in_at: Cycle::new(300),
            compute_at: Cycle::new(700),
            ..Default::default()
        };
        o.clusters.push((0, timing));
        assert_eq!(o.overhead(), Cycle::new(600));
    }

    #[test]
    fn total_core_ops_sums_reports() {
        let mut o = OffloadOutcome::default();
        let r = ExecReport {
            retired: 10,
            ..Default::default()
        };
        o.core_reports.push(vec![r, r]);
        o.core_reports.push(vec![r]);
        assert_eq!(o.total_core_ops(), 30);
    }

    #[test]
    fn timeline_renders_phases_in_order() {
        let mut o = OffloadOutcome {
            total: Cycle::new(1000),
            ..Default::default()
        };
        o.clusters.push((
            3,
            ClusterTiming {
                woken_at: Cycle::new(100),
                desc_at: Cycle::new(200),
                dma_in_at: Cycle::new(400),
                compute_at: Cycle::new(700),
                dma_out_at: Cycle::new(850),
                complete_at: Cycle::new(900),
            },
        ));
        let text = o.render_timeline(50);
        assert!(text.contains("cluster  3"));
        // Phases appear in chronological order.
        let line = text.lines().nth(1).expect("one cluster row");
        let row = &line[line.find('|').expect("bar") + 1..];
        let pos = |c: char| {
            row.find(c)
                .unwrap_or_else(|| panic!("missing {c} in {row}"))
        };
        assert!(pos('w') < pos('I'));
        assert!(pos('I') < pos('C'));
        assert!(pos('C') < pos('O'));
        assert!(pos('O') < pos('s'));
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn timeline_zero_width_panics() {
        OffloadOutcome::default().render_timeline(0);
    }
}
