//! SoC configuration and presets.

use mpsoc_isa::CoreTiming;
use mpsoc_mem::BankMode;
use mpsoc_noc::NocConfig;
use serde::{Deserialize, Serialize};

use crate::EnergyModel;

/// Full parameterization of the simulated MPSoC.
///
/// The [`SocConfig::manticore`] preset is the calibrated configuration
/// every experiment uses: 32 clusters × 8 worker cores (+1 DMA/controller
/// core each, matching the paper's 288-core accelerator at 9 cores per
/// cluster), 12 words/cycle of serial host operand preparation (the
/// paper's `N/4` term for DAXPY's 3·N words), width-bound per-cluster DMA
/// engines, and the dispatch/synchronization latencies that land the
/// multicast offload constant near the paper's 367 cycles.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SocConfig {
    /// Number of accelerator clusters (1–64).
    pub clusters: usize,
    /// Worker cores per cluster (the controller/DMA core is additional).
    pub cores_per_cluster: usize,
    /// Per-cluster TCDM capacity in 64-bit words.
    pub tcdm_words: u64,
    /// TCDM banks per cluster.
    pub tcdm_banks: usize,
    /// TCDM bank-conflict model.
    pub bank_mode: BankMode,
    /// Main-memory capacity in words.
    pub main_words: u64,
    /// Aggregate main-memory bandwidth in words per cycle (the HBM
    /// system; sized so concurrent cluster DMA engines are width-bound,
    /// not contention-bound, up to the full 32-cluster configuration).
    pub mem_words_per_cycle: u64,
    /// Host operand-preparation throughput in words per cycle: the rate
    /// at which the host flushes/copies operands to accelerator-visible
    /// memory before dispatch. This is the *serial* data term of the
    /// paper's Eq. 1: DAXPY moves 3·N words at 12 words/cycle → `N/4`.
    pub host_prep_words_per_cycle: u64,
    /// Main-memory fixed access latency in cycles.
    pub mem_latency: u64,
    /// Atomic-unit service time per AMO, in cycles.
    pub amo_service: u64,
    /// Interconnect parameters.
    pub noc: NocConfig,
    /// Worker-core pipeline timing.
    pub core_timing: CoreTiming,
    /// Per-cluster DMA engine width in words per cycle.
    pub dma_words_per_cycle: u64,
    /// Cluster controller wake-up time from the doorbell, in cycles.
    pub cluster_wake_cycles: u64,
    /// Cluster-side job setup after the descriptor arrives (decode,
    /// partition arithmetic, argument staging), in cycles.
    pub cluster_setup_cycles: u64,
    /// Cost of starting the worker cores, in cycles.
    pub core_start_cycles: u64,
    /// Job descriptor size in words (fetched by each cluster).
    pub descriptor_words: u64,
    /// Credit-unit interrupt wire latency to the host, in cycles.
    pub irq_latency: u64,
    /// Energy coefficients.
    pub energy: EnergyModel,
}

impl SocConfig {
    /// The calibrated Manticore-class configuration (32 clusters,
    /// 256 + 1 + 32 cores counting host and controllers).
    pub fn manticore() -> Self {
        SocConfig {
            clusters: 32,
            cores_per_cluster: 8,
            tcdm_words: 256 * 1024 / 8,
            tcdm_banks: 32,
            bank_mode: BankMode::Ideal,
            main_words: 1 << 22, // 32 MiB
            mem_words_per_cycle: 512,
            host_prep_words_per_cycle: 12,
            mem_latency: 20,
            amo_service: 4,
            noc: NocConfig::manticore(),
            core_timing: CoreTiming::snitch(),
            dma_words_per_cycle: 16,
            cluster_wake_cycles: 30,
            cluster_setup_cycles: 44,
            core_start_cycles: 10,
            descriptor_words: 8,
            irq_latency: 4,
            energy: EnergyModel::default(),
        }
    }

    /// The Manticore preset resized to `clusters` clusters.
    ///
    /// # Panics
    ///
    /// Panics if `clusters` is zero or exceeds 64.
    pub fn with_clusters(clusters: usize) -> Self {
        assert!(clusters > 0, "need at least one cluster");
        assert!(clusters <= 64, "at most 64 clusters are supported");
        SocConfig {
            clusters,
            ..SocConfig::manticore()
        }
    }

    /// Total worker cores in the accelerator.
    pub fn total_worker_cores(&self) -> usize {
        self.clusters * self.cores_per_cluster
    }

    /// Total accelerator cores counting each cluster's controller/DMA
    /// core, as the paper counts them (9 per cluster).
    pub fn total_accelerator_cores(&self) -> usize {
        self.clusters * (self.cores_per_cluster + 1)
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first inconsistency found.
    pub fn validate(&self) -> Result<(), String> {
        if self.clusters == 0 || self.clusters > 64 {
            return Err(format!("clusters must be in 1..=64, got {}", self.clusters));
        }
        if self.cores_per_cluster == 0 {
            return Err("cores_per_cluster must be positive".to_owned());
        }
        if self.mem_words_per_cycle == 0 {
            return Err("mem_words_per_cycle must be positive".to_owned());
        }
        if self.host_prep_words_per_cycle == 0 {
            return Err("host_prep_words_per_cycle must be positive".to_owned());
        }
        if self.dma_words_per_cycle == 0 {
            return Err("dma_words_per_cycle must be positive".to_owned());
        }
        if self.tcdm_words == 0 {
            return Err("tcdm_words must be positive".to_owned());
        }
        if self.tcdm_banks == 0 {
            return Err("tcdm_banks must be positive".to_owned());
        }
        if self.descriptor_words == 0 {
            return Err("descriptor_words must be positive".to_owned());
        }
        Ok(())
    }
}

impl Default for SocConfig {
    fn default() -> Self {
        SocConfig::manticore()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manticore_matches_paper_geometry() {
        let cfg = SocConfig::manticore();
        assert_eq!(cfg.clusters, 32);
        assert_eq!(cfg.cores_per_cluster, 8);
        // 32 × 9 = 288 accelerator cores, "up to 288 in our experiments".
        assert_eq!(cfg.total_accelerator_cores(), 288);
        assert_eq!(cfg.total_worker_cores(), 256);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn with_clusters_resizes() {
        let cfg = SocConfig::with_clusters(4);
        assert_eq!(cfg.clusters, 4);
        assert_eq!(cfg.cores_per_cluster, 8);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn validate_catches_bad_values() {
        let mut cfg = SocConfig::manticore();
        cfg.mem_words_per_cycle = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = SocConfig::manticore();
        cfg.clusters = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = SocConfig::manticore();
        cfg.cores_per_cluster = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = SocConfig::manticore();
        cfg.tcdm_banks = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "at most 64")]
    fn with_too_many_clusters_panics() {
        let _ = SocConfig::with_clusters(65);
    }

    #[test]
    fn default_is_manticore() {
        assert_eq!(SocConfig::default(), SocConfig::manticore());
    }
}
