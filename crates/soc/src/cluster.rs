//! Accelerator cluster state: job bindings, phases and timing records.

use mpsoc_isa::{ExecReport, Program};
use mpsoc_mem::Addr;
use mpsoc_sim::Cycle;
use serde::{Deserialize, Serialize};

/// One bulk DMA transfer between main memory and a cluster's TCDM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transfer {
    /// Source/destination address in main memory.
    pub main_addr: Addr,
    /// Destination/source word index in the cluster's TCDM.
    pub local_word: u64,
    /// Number of 64-bit words.
    pub words: u64,
}

/// How a cluster announces job completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompletionSignal {
    /// Post a write to the credit-counter unit (the paper's extension).
    Credit,
    /// Atomically increment a software-barrier counter in main memory
    /// (the baseline runtime); the host polls it.
    Barrier {
        /// Address of the barrier counter word.
        addr: Addr,
    },
}

/// One pipeline stage of a cluster's job: data in, compute, data out.
#[derive(Debug, Clone)]
pub struct JobStage {
    /// DMA-in transfers (main → TCDM), performed before this stage's
    /// compute.
    pub dma_in: Vec<Transfer>,
    /// One micro-op program per worker core, in core order.
    pub programs: Vec<Program>,
    /// DMA-out transfers (TCDM → main), performed after this stage's
    /// compute.
    pub dma_out: Vec<Transfer>,
}

/// Everything a cluster needs to execute its share of an offloaded job.
///
/// The offload runtime builds one `ClusterJob` per selected cluster from
/// the kernel, the partition and the SoC memory layout, and installs it
/// with [`Soc::bind_job`](crate::Soc::bind_job). In hardware these
/// parameters travel inside the job descriptor; pre-binding them keeps
/// the simulator's descriptor *fetch* (which is what costs cycles) simple
/// while the *contents* stay faithful.
///
/// A job consists of one or more [`JobStage`]s. With a single stage the
/// cluster behaves as in the paper: DMA-in → compute → DMA-out. With
/// multiple stages the cluster's DMA engine and worker cores form a
/// pipeline — stage `k+1`'s DMA-in overlaps stage `k`'s compute (double
/// buffering), hiding data movement behind arithmetic.
#[derive(Debug, Clone)]
pub struct ClusterJob {
    /// The pipeline stages, executed in order with overlap.
    pub stages: Vec<JobStage>,
    /// Scalar kernel arguments staged into the TCDM argument area
    /// (followed by one zero word, per the kernel ABI).
    pub args: Vec<f64>,
    /// TCDM word index of the argument area.
    pub args_local_word: u64,
    /// Completion mechanism.
    pub completion: CompletionSignal,
}

impl ClusterJob {
    /// Builds the classic single-stage job of the paper's runtimes.
    pub fn single(
        programs: Vec<Program>,
        dma_in: Vec<Transfer>,
        dma_out: Vec<Transfer>,
        args: Vec<f64>,
        args_local_word: u64,
        completion: CompletionSignal,
    ) -> Self {
        ClusterJob {
            stages: vec![JobStage {
                dma_in,
                programs,
                dma_out,
            }],
            args,
            args_local_word,
            completion,
        }
    }
}

/// Execution progress of one [`JobStage`].
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct StageProgress {
    pub in_started: bool,
    pub in_done: bool,
    pub compute_started: bool,
    pub compute_done: bool,
    pub out_started: bool,
    pub out_done: bool,
}

/// Where a cluster currently is in the offload pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ClusterPhase {
    /// No job in flight.
    #[default]
    Idle,
    /// Doorbell received, controller waking.
    Waking,
    /// Fetching the job descriptor from main memory.
    Fetching,
    /// DMA-in in flight.
    DmaIn,
    /// Worker cores running.
    Computing,
    /// DMA-out in flight.
    DmaOut,
    /// Completion signal posted.
    Done,
}

/// Per-cluster phase timestamps for one offload, all absolute cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ClusterTiming {
    /// Doorbell delivery.
    pub woken_at: Cycle,
    /// Descriptor fetched and decoded.
    pub desc_at: Cycle,
    /// DMA-in complete.
    pub dma_in_at: Cycle,
    /// All worker cores halted.
    pub compute_at: Cycle,
    /// DMA-out complete.
    pub dma_out_at: Cycle,
    /// Completion signal arrived at its destination.
    pub complete_at: Cycle,
}

/// Internal per-cluster simulation state.
#[derive(Debug, Clone, Default)]
pub(crate) struct ClusterState {
    pub job: Option<ClusterJob>,
    pub phase: ClusterPhase,
    pub timing: ClusterTiming,
    pub core_reports: Vec<ExecReport>,
    pub mailbox_job_ptr: u64,
    /// Per-stage pipeline progress (sized to the job's stage count when
    /// the descriptor arrives).
    pub stages: Vec<StageProgress>,
    /// `true` while the cluster DMA engine is busy with a task.
    pub dma_busy: bool,
    /// `true` while the worker cores are running a stage.
    pub compute_busy: bool,
    /// Guards against posting the completion signal twice.
    pub completed: bool,
    /// Open telemetry span IDs (0 = no span open / telemetry disabled).
    pub wake_span: u64,
    /// Descriptor-fetch span in flight.
    pub desc_span: u64,
    /// DMA task span in flight (one engine, so at most one).
    pub dma_span: u64,
    /// Compute-stage span in flight.
    pub compute_span: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_default_is_idle() {
        assert_eq!(ClusterPhase::default(), ClusterPhase::Idle);
    }

    #[test]
    fn transfer_and_signal_are_plain_data() {
        let t = Transfer {
            main_addr: Addr::new(0x8000_0000),
            local_word: 4,
            words: 128,
        };
        assert_eq!(t.words, 128);
        let c = CompletionSignal::Barrier {
            addr: Addr::new(0x8000_1000),
        };
        assert_ne!(c, CompletionSignal::Credit);
    }

    #[test]
    fn timing_defaults_to_zero() {
        let t = ClusterTiming::default();
        assert_eq!(t.woken_at, Cycle::ZERO);
        assert_eq!(t.complete_at, Cycle::ZERO);
    }
}
