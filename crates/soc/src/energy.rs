//! A first-order energy model.
//!
//! The paper motivates heterogeneous MPSoCs by energy efficiency and
//! notes that offload overheads "add up to the runtime *and energy
//! consumption*" of a job. This model turns the simulator's activity
//! counters into a picojoule estimate so experiments can report energy
//! next to runtime (e.g. the energy-constrained offload decision in
//! `mpsoc-offload::decision`). Coefficients are order-of-magnitude values
//! for a 22 nm-class node, not calibrated against silicon.

use serde::{Deserialize, Serialize};

/// Per-event energy coefficients in picojoules, plus idle power.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Energy per host busy cycle.
    pub host_cycle_pj: f64,
    /// Energy per retired worker-core micro-op.
    pub core_op_pj: f64,
    /// Energy per word moved by DMA (incl. the memory access).
    pub dma_word_pj: f64,
    /// Energy per word of main-memory traffic from the host.
    pub mem_word_pj: f64,
    /// Energy per NoC store (unicast or per-target multicast delivery).
    pub noc_store_pj: f64,
    /// Energy per credit-counter or barrier operation.
    pub sync_op_pj: f64,
    /// Idle/leakage power per cluster, in picojoules per cycle.
    pub cluster_idle_pj_per_cycle: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            host_cycle_pj: 20.0,
            core_op_pj: 2.0,
            dma_word_pj: 6.0,
            mem_word_pj: 8.0,
            noc_store_pj: 3.0,
            sync_op_pj: 2.0,
            cluster_idle_pj_per_cycle: 1.5,
        }
    }
}

/// Activity totals for one offload, filled by the SoC.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyActivity {
    /// Host busy cycles.
    pub host_cycles: u64,
    /// Retired worker-core micro-ops across all clusters.
    pub core_ops: u64,
    /// Words moved by cluster DMA engines (both directions).
    pub dma_words: u64,
    /// Words of host-initiated main-memory traffic.
    pub mem_words: u64,
    /// NoC stores (dispatch + completion traffic).
    pub noc_stores: u64,
    /// Synchronization operations (credits, AMOs, polls).
    pub sync_ops: u64,
    /// Cluster-cycles of the whole offload (clusters × total runtime).
    pub cluster_cycles: u64,
}

/// The energy estimate for one offload.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyReport {
    /// Host contribution, pJ.
    pub host_pj: f64,
    /// Worker-core compute contribution, pJ.
    pub compute_pj: f64,
    /// Data-movement contribution (DMA + host memory traffic), pJ.
    pub data_pj: f64,
    /// Dispatch/synchronization contribution, pJ.
    pub sync_pj: f64,
    /// Idle/leakage contribution, pJ.
    pub idle_pj: f64,
}

impl EnergyReport {
    /// Total energy in picojoules.
    pub fn total_pj(&self) -> f64 {
        self.host_pj + self.compute_pj + self.data_pj + self.sync_pj + self.idle_pj
    }
}

impl EnergyModel {
    /// Evaluates the model on measured activity.
    pub fn evaluate(&self, activity: &EnergyActivity) -> EnergyReport {
        EnergyReport {
            host_pj: activity.host_cycles as f64 * self.host_cycle_pj,
            compute_pj: activity.core_ops as f64 * self.core_op_pj,
            data_pj: activity.dma_words as f64 * self.dma_word_pj
                + activity.mem_words as f64 * self.mem_word_pj,
            sync_pj: activity.noc_stores as f64 * self.noc_store_pj
                + activity.sync_ops as f64 * self.sync_op_pj,
            idle_pj: activity.cluster_cycles as f64 * self.cluster_idle_pj_per_cycle,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_activity_zero_energy() {
        let report = EnergyModel::default().evaluate(&EnergyActivity::default());
        assert_eq!(report.total_pj(), 0.0);
    }

    #[test]
    fn contributions_add_up() {
        let model = EnergyModel::default();
        let activity = EnergyActivity {
            host_cycles: 100,
            core_ops: 1000,
            dma_words: 300,
            mem_words: 10,
            noc_stores: 5,
            sync_ops: 4,
            cluster_cycles: 2000,
        };
        let report = model.evaluate(&activity);
        assert_eq!(report.host_pj, 2000.0);
        assert_eq!(report.compute_pj, 2000.0);
        assert_eq!(report.data_pj, 300.0 * 6.0 + 80.0);
        assert_eq!(report.sync_pj, 15.0 + 8.0);
        assert_eq!(report.idle_pj, 3000.0);
        let sum =
            report.host_pj + report.compute_pj + report.data_pj + report.sync_pj + report.idle_pj;
        assert_eq!(report.total_pj(), sum);
    }

    #[test]
    fn more_activity_more_energy() {
        let model = EnergyModel::default();
        let small = EnergyActivity {
            core_ops: 10,
            ..Default::default()
        };
        let large = EnergyActivity {
            core_ops: 1000,
            ..Default::default()
        };
        assert!(model.evaluate(&large).total_pj() > model.evaluate(&small).total_pj());
    }
}
