//! # mpsoc-soc
//!
//! The assembled heterogeneous MPSoC: a Manticore-class system with a
//! CVA6-class host core, up to 32 accelerator clusters of 8 worker cores
//! each, per-cluster DMA engines and TCDMs, a shared main-memory system,
//! the host↔cluster interconnect (with multicast), and the paper's
//! dedicated **credit-counter synchronization unit** with its completion
//! interrupt.
//!
//! The SoC executes *offloads*: the host runs a [`HostProgram`] (built by
//! the `mpsoc-offload` runtime) that marshals a job descriptor,
//! dispatches it to a set of clusters (sequentially or by multicast) and
//! waits for completion (software polling barrier or credit-counter
//! interrupt). Each selected cluster executes its [`ClusterJob`]: wake →
//! fetch descriptor → DMA-in → run worker cores (real micro-op programs
//! over real `f64` data) → DMA-out → signal completion.
//!
//! Everything is simulated on the deterministic event kernel of
//! [`mpsoc_sim`]; an offload returns an [`OffloadOutcome`] with the
//! end-to-end runtime (what the paper's Fig. 1 plots), a per-phase
//! breakdown, per-cluster/per-core reports, statistics and an energy
//! estimate.
//!
//! The substrate is natively **multi-tenant**: [`Soc::begin_jobs`] opens
//! a session in which any number of jobs on disjoint cluster partitions
//! run concurrently ([`Soc::submit_job`] / [`Soc::advance_jobs`]),
//! sharing the NoC, HBM bandwidth, AMO unit and the serial host core.
//! Cross-tenant interference *emerges* from the shared resource models
//! and is attributed per job in [`ContentionReport`]s delivered with
//! each [`JobCompletion`]. [`Soc::run_offload`] is the single-job
//! wrapper over the same machinery.
//!
//! # Example
//!
//! A minimal hand-built offload (the `mpsoc-offload` crate automates all
//! of this):
//!
//! ```
//! use mpsoc_soc::{ClusterJob, CompletionSignal, HostOp, HostProgram, Soc, SocConfig, Transfer};
//! use mpsoc_mem::ClusterReg;
//! use mpsoc_noc::ClusterMask;
//! use mpsoc_isa::ProgramBuilder;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut config = SocConfig::with_clusters(2);
//! config.cores_per_cluster = 1;
//! let mut soc = Soc::new(config)?;
//!
//! // A do-nothing core program for cluster 0.
//! let mut b = ProgramBuilder::new();
//! b.halt();
//! let nop = b.build()?;
//!
//! let job = ClusterJob::single(vec![nop], vec![], vec![], vec![], 0, CompletionSignal::Credit);
//! soc.bind_job(0, job);
//!
//! let program = HostProgram::new(vec![
//!     HostOp::Compute(10),
//!     HostOp::CreditArm { threshold: 1 },
//!     HostOp::StoreMailbox { cluster: 0, reg: ClusterReg::Wakeup, value: 1 },
//!     HostOp::WaitIrq,
//!     HostOp::End,
//! ]);
//!
//! let outcome = soc.run_offload(program, ClusterMask::single(0))?;
//! assert!(outcome.total.as_u64() > 10);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cluster;
mod config;
mod credit;
mod energy;
mod error;
mod host;
mod outcome;
mod soc;

pub use cluster::{ClusterJob, ClusterPhase, ClusterTiming, CompletionSignal, JobStage, Transfer};
pub use config::SocConfig;
pub use credit::CreditCounter;
pub use energy::{EnergyModel, EnergyReport};
pub use error::SocError;
pub use host::{HostOp, HostProgram};
pub use mpsoc_faults::{
    FaultInjector, FaultKind, FaultPlan, FaultRecord, FaultStats, OutageWindow, SiteSpec,
};
pub use mpsoc_mem::BankMode;
pub use mpsoc_telemetry::{EventKind, EventTrace, Mark, PhaseBreakdown, TraceEvent, Unit};
pub use outcome::{OffloadOutcome, PhaseTimestamps};
pub use soc::{
    ContentionReport, DmaDirection, JobCompletion, JobId, SessionProgress, Soc, SocEvent,
};
