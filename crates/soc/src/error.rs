//! SoC-level errors.

use std::error::Error;
use std::fmt;

use mpsoc_isa::ExecError;
use mpsoc_mem::MemoryError;

/// An error raised while assembling or running the SoC.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SocError {
    /// The configuration failed validation.
    Config {
        /// Human-readable reason.
        reason: String,
    },
    /// A memory access failed (bad descriptor, DMA range, ...).
    Memory(MemoryError),
    /// A worker core faulted while executing its program.
    Core {
        /// Cluster index.
        cluster: usize,
        /// Worker-core index within the cluster.
        core: usize,
        /// The underlying execution error.
        error: ExecError,
    },
    /// A cluster was selected for offload but has no job bound.
    MissingJob {
        /// Cluster index.
        cluster: usize,
    },
    /// A job was bound with the wrong number of core programs.
    ProgramCount {
        /// Cluster index.
        cluster: usize,
        /// Programs provided.
        got: usize,
        /// Worker cores in the cluster.
        want: usize,
    },
    /// The simulation ended without the host program completing.
    HostStalled {
        /// The host-program op index it stopped at.
        pc: usize,
    },
    /// A submitted job's cluster mask overlaps a job still in flight:
    /// concurrent tenants must occupy disjoint partitions.
    PartitionOverlap {
        /// The contested cluster index.
        cluster: usize,
    },
}

impl fmt::Display for SocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SocError::Config { reason } => write!(f, "invalid configuration: {reason}"),
            SocError::Memory(e) => write!(f, "memory error: {e}"),
            SocError::Core {
                cluster,
                core,
                error,
            } => write!(f, "core {core} of cluster {cluster} faulted: {error}"),
            SocError::MissingJob { cluster } => {
                write!(f, "cluster {cluster} selected for offload but has no job bound")
            }
            SocError::ProgramCount { cluster, got, want } => write!(
                f,
                "cluster {cluster} job has {got} core programs, expected {want}"
            ),
            SocError::HostStalled { pc } => write!(
                f,
                "simulation went quiescent with the host stalled at op {pc} (missing completion signal?)"
            ),
            SocError::PartitionOverlap { cluster } => write!(
                f,
                "cluster {cluster} already belongs to a job still in flight"
            ),
        }
    }
}

impl Error for SocError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SocError::Memory(e) => Some(e),
            SocError::Core { error, .. } => Some(error),
            _ => None,
        }
    }
}

impl From<MemoryError> for SocError {
    fn from(e: MemoryError) -> Self {
        SocError::Memory(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpsoc_mem::Addr;

    #[test]
    fn display_and_source() {
        let e = SocError::Memory(MemoryError::Misaligned { addr: Addr::new(3) });
        assert!(e.to_string().contains("memory error"));
        assert!(e.source().is_some());

        let e = SocError::MissingJob { cluster: 5 };
        assert!(e.to_string().contains("cluster 5"));
        assert!(e.source().is_none());

        let e = SocError::HostStalled { pc: 2 };
        assert!(e.to_string().contains("op 2"));
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<SocError>();
    }
}
