//! The dedicated accelerator→host synchronization unit.

use mpsoc_sim::Cycle;

/// The paper's centralized credit counter.
///
/// Before an offload, the host (CVA6) programs the number of selected
/// clusters as the `threshold`. When a cluster finishes its share of the
/// job it posts a write to the unit's increment register, which bumps the
/// counter as a side effect. The moment the counter reaches the
/// threshold, the unit fires an interrupt toward the host — no software
/// polling, no shared-memory contention.
///
/// # Example
///
/// ```
/// use mpsoc_soc::CreditCounter;
/// use mpsoc_sim::Cycle;
///
/// let mut unit = CreditCounter::new();
/// unit.arm(2);
/// assert_eq!(unit.increment(Cycle::new(100)), None);
/// assert_eq!(unit.increment(Cycle::new(105)), Some(Cycle::new(105)));
/// assert_eq!(unit.count(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CreditCounter {
    threshold: u64,
    count: u64,
    armed: bool,
    fired: bool,
    lost: u64,
}

impl CreditCounter {
    /// Creates a disarmed unit.
    pub fn new() -> Self {
        CreditCounter::default()
    }

    /// Programs `threshold` and arms the unit, clearing the count and
    /// any recorded losses.
    pub fn arm(&mut self, threshold: u64) {
        self.threshold = threshold;
        self.count = 0;
        self.armed = true;
        self.fired = false;
        self.lost = 0;
    }

    /// Disarms and clears the unit (the memory-mapped `Reset` register).
    pub fn reset(&mut self) {
        *self = CreditCounter::default();
    }

    /// Current credit count.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Programmed threshold.
    pub fn threshold(&self) -> u64 {
        self.threshold
    }

    /// `true` while armed and not yet fired.
    pub fn is_armed(&self) -> bool {
        self.armed && !self.fired
    }

    /// Registers one completion credit arriving at time `at`. Returns
    /// `Some(at)` exactly once: when the count reaches the threshold on an
    /// armed unit (the moment the interrupt wire is raised).
    pub fn increment(&mut self, at: Cycle) -> Option<Cycle> {
        self.count += 1;
        if self.armed && !self.fired && self.count >= self.threshold {
            self.fired = true;
            return Some(at);
        }
        None
    }

    /// Absorbs a credit that was lost in flight (fault injection): the
    /// wire glitched at time `at`, the counter never saw the increment.
    /// Models the *absence* of a hardware event, so the count and the
    /// interrupt logic are untouched — only the loss is recorded so
    /// diagnostics can distinguish "still running" from "wedged".
    pub fn absorb_lost(&mut self, _at: Cycle) {
        self.lost += 1;
    }

    /// Credits lost in flight since the unit was last armed.
    pub fn lost(&self) -> u64 {
        self.lost
    }

    /// Credits still outstanding before the interrupt fires: on a wedged
    /// barrier this stays positive forever — the observable signature a
    /// watchdog needs.
    pub fn missing(&self) -> u64 {
        self.threshold.saturating_sub(self.count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_exactly_at_threshold() {
        let mut unit = CreditCounter::new();
        unit.arm(3);
        assert!(unit.is_armed());
        assert_eq!(unit.increment(Cycle::new(1)), None);
        assert_eq!(unit.increment(Cycle::new(2)), None);
        assert_eq!(unit.increment(Cycle::new(3)), Some(Cycle::new(3)));
        // A late (spurious) extra credit does not re-fire.
        assert_eq!(unit.increment(Cycle::new(4)), None);
        assert_eq!(unit.count(), 4);
        assert!(!unit.is_armed());
    }

    #[test]
    fn disarmed_unit_counts_but_never_fires() {
        let mut unit = CreditCounter::new();
        assert_eq!(unit.increment(Cycle::new(1)), None);
        assert_eq!(unit.count(), 1);
    }

    #[test]
    fn rearming_clears_count() {
        let mut unit = CreditCounter::new();
        unit.arm(1);
        assert!(unit.increment(Cycle::new(5)).is_some());
        unit.arm(2);
        assert_eq!(unit.count(), 0);
        assert_eq!(unit.threshold(), 2);
        assert_eq!(unit.increment(Cycle::new(6)), None);
        assert_eq!(unit.increment(Cycle::new(7)), Some(Cycle::new(7)));
    }

    #[test]
    fn threshold_one_fires_immediately() {
        let mut unit = CreditCounter::new();
        unit.arm(1);
        assert_eq!(unit.increment(Cycle::new(9)), Some(Cycle::new(9)));
    }

    #[test]
    fn lost_credits_wedge_the_barrier_observably() {
        let mut unit = CreditCounter::new();
        unit.arm(3);
        assert_eq!(unit.increment(Cycle::new(1)), None);
        unit.absorb_lost(Cycle::new(2));
        assert_eq!(unit.increment(Cycle::new(3)), None);
        // All three clusters reported, but the interrupt never fired.
        assert!(unit.is_armed());
        assert_eq!(unit.count(), 2);
        assert_eq!(unit.lost(), 1);
        assert_eq!(unit.missing(), 1);
        // Re-arming clears the loss record.
        unit.arm(2);
        assert_eq!(unit.lost(), 0);
        assert_eq!(unit.missing(), 2);
    }

    #[test]
    fn reset_disarms() {
        let mut unit = CreditCounter::new();
        unit.arm(5);
        unit.increment(Cycle::new(1));
        unit.reset();
        assert_eq!(unit.count(), 0);
        assert_eq!(unit.threshold(), 0);
        assert!(!unit.is_armed());
    }
}
