//! SoC-level property tests: determinism, phase ordering, and dispatch
//! scaling invariants on randomly shaped (but well-formed) offloads.

use proptest::prelude::*;

use mpsoc_isa::{FpReg, IntReg, Program, ProgramBuilder};
use mpsoc_mem::ClusterReg;
use mpsoc_noc::ClusterMask;
use mpsoc_soc::{ClusterJob, CompletionSignal, HostOp, HostProgram, Soc, SocConfig};

/// A small compute program of `work` dependent FP adds.
fn busy_program(work: u32) -> Program {
    let mut b = ProgramBuilder::new();
    b.li(IntReg::new(1), i64::from(work));
    let top = b.label();
    b.bind(top);
    b.fadd(FpReg::new(0), FpReg::new(0), FpReg::new(1));
    b.addi(IntReg::new(1), IntReg::new(1), -1);
    b.bnez(IntReg::new(1), top);
    b.halt();
    b.build().expect("well-formed")
}

fn soc_with(clusters: usize, cores: usize) -> Soc {
    let mut cfg = SocConfig::with_clusters(clusters);
    cfg.cores_per_cluster = cores;
    Soc::new(cfg).expect("valid config")
}

fn credit_offload(soc: &mut Soc, clusters: usize) -> mpsoc_soc::OffloadOutcome {
    let mask = ClusterMask::first(clusters);
    let program = HostProgram::new(vec![
        HostOp::Compute(20),
        HostOp::CreditArm {
            threshold: clusters as u64,
        },
        HostOp::MulticastMailbox {
            mask,
            reg: ClusterReg::Wakeup,
            value: 1,
        },
        HostOp::WaitIrq,
        HostOp::End,
    ]);
    soc.run_offload(program, mask).expect("offload")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Identical SoCs built twice produce identical cycle counts for any
    /// job shape — the determinism everything else relies on.
    #[test]
    fn offloads_are_deterministic(
        clusters in 1usize..=8,
        cores in 1usize..=4,
        work in 1u32..500,
    ) {
        let run = || {
            let mut soc = soc_with(clusters, cores);
            for c in 0..clusters {
                soc.bind_job(
                    c,
                    ClusterJob::single(
                        vec![busy_program(work); cores],
                        vec![],
                        vec![],
                        vec![],
                        0,
                        CompletionSignal::Credit,
                    ),
                );
            }
            credit_offload(&mut soc, clusters).total
        };
        prop_assert_eq!(run(), run());
    }

    /// Phase timestamps are causally ordered for every cluster.
    #[test]
    fn phases_are_causally_ordered(
        clusters in 1usize..=8,
        work in 1u32..300,
    ) {
        let mut soc = soc_with(clusters, 2);
        for c in 0..clusters {
            soc.bind_job(
                c,
                ClusterJob::single(
                    vec![busy_program(work); 2],
                    vec![],
                    vec![],
                    vec![],
                    0,
                    CompletionSignal::Credit,
                ),
            );
        }
        let outcome = credit_offload(&mut soc, clusters);
        for &(_, t) in &outcome.clusters {
            prop_assert!(t.woken_at <= t.desc_at);
            prop_assert!(t.desc_at <= t.dma_in_at);
            prop_assert!(t.dma_in_at <= t.compute_at);
            prop_assert!(t.compute_at <= t.dma_out_at);
            prop_assert!(t.dma_out_at <= t.complete_at);
        }
        prop_assert!(outcome.total >= outcome.phases.sync_done);
        prop_assert!(outcome.phases.sync_done >= outcome.phases.last_dma_out);
    }

    /// More compute per core never shortens the offload.
    #[test]
    fn runtime_is_monotone_in_work(work in 1u32..300) {
        let measure = |w: u32| {
            let mut soc = soc_with(2, 2);
            for c in 0..2 {
                soc.bind_job(
                    c,
                    ClusterJob::single(
                        vec![busy_program(w); 2],
                        vec![],
                        vec![],
                        vec![],
                        0,
                        CompletionSignal::Credit,
                    ),
                );
            }
            credit_offload(&mut soc, 2).total
        };
        prop_assert!(measure(work + 50) >= measure(work));
    }

    /// A multi-stage job with zero-work stages completes and signals
    /// exactly once.
    #[test]
    fn multi_stage_nop_jobs_complete(stages in 1usize..6, clusters in 1usize..=4) {
        let mut soc = soc_with(clusters, 1);
        for c in 0..clusters {
            let stage = mpsoc_soc::JobStage {
                dma_in: vec![],
                programs: vec![busy_program(1)],
                dma_out: vec![],
            };
            soc.bind_job(
                c,
                ClusterJob {
                    stages: vec![stage; stages],
                    args: vec![],
                    args_local_word: 0,
                    completion: CompletionSignal::Credit,
                },
            );
        }
        let outcome = credit_offload(&mut soc, clusters);
        prop_assert!(outcome.total.as_u64() > 0);
        // One completion credit per cluster, not per stage.
        prop_assert_eq!(outcome.clusters.len(), clusters);
    }
}
