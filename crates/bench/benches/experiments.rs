//! Criterion benches: one group per paper artifact.
//!
//! The simulator is deterministic, so the *simulated* cycle counts (the
//! paper's actual metric) are exactly reproducible; these benches measure
//! the wall-clock cost of regenerating each artifact and print the
//! headline series once per run, so `cargo bench` both exercises and
//! reproduces the paper's results.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use mpsoc_bench::Harness;
use mpsoc_offload::OffloadStrategy;

fn bench_fig1_left(c: &mut Criterion) {
    let mut harness = Harness::new().expect("harness");
    // Print the series once: this IS Fig. 1 (left).
    let rows = harness.fig1_left().expect("fig1_left");
    println!("\nfig1_left (N=1024): M, baseline, extended");
    for r in &rows {
        println!("  {:>2}, {:>5}, {:>5}", r.m, r.baseline, r.extended);
    }
    let mut group = c.benchmark_group("fig1_left");
    group.sample_size(10);
    for m in [1usize, 8, 32] {
        group.bench_with_input(BenchmarkId::new("baseline", m), &m, |b, &m| {
            b.iter(|| {
                harness
                    .measure_daxpy(black_box(1024), m, OffloadStrategy::baseline())
                    .expect("offload")
            })
        });
        group.bench_with_input(BenchmarkId::new("extended", m), &m, |b, &m| {
            b.iter(|| {
                harness
                    .measure_daxpy(black_box(1024), m, OffloadStrategy::extended())
                    .expect("offload")
            })
        });
    }
    group.finish();
}

fn bench_fig1_right(c: &mut Criterion) {
    let mut harness = Harness::new().expect("harness");
    let rows = harness.fig1_right().expect("fig1_right");
    let max = rows
        .iter()
        .max_by(|a, b| a.speedup.total_cmp(&b.speedup))
        .expect("rows");
    println!(
        "\nfig1_right: max speedup {:.3} at N={} M={}; always > 1: {}",
        max.speedup,
        max.n,
        max.m,
        rows.iter().all(|r| r.speedup > 1.0)
    );
    let mut group = c.benchmark_group("fig1_right");
    group.sample_size(10);
    for n in [1024u64, 8192] {
        group.bench_with_input(BenchmarkId::new("pair_at_m32", n), &n, |b, &n| {
            b.iter(|| {
                let base = harness
                    .measure_daxpy(n, 32, OffloadStrategy::baseline())
                    .expect("offload");
                let ext = harness
                    .measure_daxpy(n, 32, OffloadStrategy::extended())
                    .expect("offload");
                black_box(base as f64 / ext as f64)
            })
        });
    }
    group.finish();
}

fn bench_model_and_mape(c: &mut Criterion) {
    let mut harness = Harness::new().expect("harness");
    let (model, rows) = harness.mape_table().expect("mape");
    println!("\nmape_table (model {model}):");
    for r in &rows {
        println!("  N={:>5}  MAPE {:.3}%", r.n, r.mape_pct);
    }
    let mut group = c.benchmark_group("mape");
    group.sample_size(10);
    group.bench_function("fit_over_training_grid", |b| {
        b.iter(|| harness.model_fit().expect("fit"))
    });
    group.finish();
}

fn bench_decision(c: &mut Criterion) {
    let mut harness = Harness::new().expect("harness");
    let (_, rows) = harness.decision_table(1.0).expect("decision");
    println!(
        "\ndecision: {}/{} confirmed",
        rows.iter().filter(|r| r.confirmed).count(),
        rows.len()
    );
    let mut group = c.benchmark_group("decision");
    group.sample_size(10);
    group.bench_function("solve_and_validate_one", |b| {
        let model = mpsoc_offload::RuntimeModel::paper();
        b.iter(|| mpsoc_offload::decision::min_clusters(black_box(&model), black_box(1024), 650.0))
    });
    group.finish();
}

fn bench_ablation(c: &mut Criterion) {
    let mut harness = Harness::new().expect("harness");
    let rows = harness.ablation().expect("ablation");
    println!("\nablation at M=32:");
    for r in rows.iter().filter(|r| r.m == 32) {
        println!("  {:<34} {:>5}", r.strategy, r.cycles);
    }
    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);
    for strategy in OffloadStrategy::all() {
        group.bench_with_input(
            BenchmarkId::from_parameter(strategy.to_string()),
            &strategy,
            |b, &s| b.iter(|| harness.measure_daxpy(1024, 32, s).expect("offload")),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_fig1_left,
    bench_fig1_right,
    bench_model_and_mape,
    bench_decision,
    bench_ablation
);
criterion_main!(benches);
