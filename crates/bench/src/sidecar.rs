//! Wall-clock sidecar artifacts: the shared `BENCH_<name>.json` writer.
//!
//! The repo's determinism discipline splits every study's output in
//! two: the `results/*.json` artifact is a pure function of the seed
//! (CI byte-compares two runs), while wall-clock numbers — how fast the
//! simulator itself ran — go into a `BENCH_<name>.json` *sidecar* that
//! is never byte-compared. Before this module each study binary
//! hand-rolled its own sidecar struct; this is the one shared schema:
//!
//! ```json
//! {
//!   "name": "serve",
//!   "wall_seconds": 0.96,
//!   "jobs": 1320080,
//!   "throughput": 1372092.0,
//!   "metadata": { "bin": "serve_study", "profiling": true },
//!   "detail": { ... study-specific payload ... }
//! }
//! ```
//!
//! `metadata` is deliberately **git-describe-free**: no commit hashes,
//! no timestamps, no hostnames — nothing that would tempt a reader to
//! diff sidecars across machines or treat them as reproducible. The
//! only metadata is what the run itself knew: which binary produced it
//! and whether the self-profiler was on.

use std::path::PathBuf;

use serde::Serialize;

use crate::report::write_json;

/// Run provenance that is safe to embed in a non-reproducible artifact:
/// no VCS state, no clock, no host identity.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct BenchMetadata {
    /// The producing binary's file stem (from `argv[0]`).
    pub bin: String,
    /// Whether the wall-clock self-profiler was enabled for the run.
    pub profiling: bool,
}

impl BenchMetadata {
    /// Metadata for the current process: binary name from `argv[0]`,
    /// profiling state from the live profiler switch.
    pub fn current() -> Self {
        let bin = std::env::args()
            .next()
            .map(PathBuf::from)
            .and_then(|p| p.file_stem().map(|s| s.to_string_lossy().into_owned()))
            .unwrap_or_else(|| "unknown".to_owned());
        BenchMetadata {
            bin,
            profiling: mpsoc_sim::profile::enabled(),
        }
    }
}

/// The shared sidecar schema — see the module docs for the layout.
#[derive(Debug)]
pub struct BenchSidecar<T: Serialize> {
    /// Short study name; the file is written as `BENCH_<name>.json`.
    pub name: String,
    /// End-to-end wall time of the study (seconds).
    pub wall_seconds: f64,
    /// Units of work the study performed (jobs, cells, cycles — the
    /// study's own notion; `throughput` uses the same unit).
    pub jobs: u64,
    /// `jobs / wall_seconds` (0 when no time elapsed).
    pub throughput: f64,
    /// Git-describe-free provenance.
    pub metadata: BenchMetadata,
    /// Study-specific payload.
    pub detail: T,
}

// Hand-rolled: the vendored serde derive does not handle generics.
impl<T: Serialize> Serialize for BenchSidecar<T> {
    fn serialize(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("name".to_owned(), self.name.serialize()),
            ("wall_seconds".to_owned(), self.wall_seconds.serialize()),
            ("jobs".to_owned(), self.jobs.serialize()),
            ("throughput".to_owned(), self.throughput.serialize()),
            ("metadata".to_owned(), self.metadata.serialize()),
            ("detail".to_owned(), self.detail.serialize()),
        ])
    }
}

impl<T: Serialize> BenchSidecar<T> {
    /// Builds a sidecar for the current process, deriving throughput
    /// from `jobs` and `wall_seconds` (0 when no time elapsed).
    pub fn new(name: &str, wall_seconds: f64, jobs: u64, detail: T) -> Self {
        BenchSidecar {
            name: name.to_owned(),
            wall_seconds,
            jobs,
            throughput: if wall_seconds > 0.0 {
                jobs as f64 / wall_seconds
            } else {
                0.0
            },
            metadata: BenchMetadata::current(),
            detail,
        }
    }
}

/// Writes `BENCH_<name>.json` into the working directory and returns
/// the path. Throughput is derived from `jobs` and `wall_seconds`.
///
/// # Errors
///
/// I/O and serialization failures.
pub fn write_bench_sidecar<T: Serialize>(
    name: &str,
    wall_seconds: f64,
    jobs: u64,
    detail: T,
) -> Result<PathBuf, Box<dyn std::error::Error>> {
    let sidecar = BenchSidecar::new(name, wall_seconds, jobs, detail);
    let path = PathBuf::from(format!("BENCH_{name}.json"));
    write_json(&path, &sidecar)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sidecar_derives_throughput_and_carries_detail() {
        let sidecar = BenchSidecar::new("unit", 2.0, 10, vec![1u64, 2, 3]);
        assert_eq!(sidecar.throughput, 5.0);
        let text = serde_json::to_string_pretty(&sidecar).unwrap();
        assert!(text.contains("\"throughput\": 5"));
        assert!(text.contains("\"detail\""));
        assert!(text.contains("\"profiling\""));
        assert!(!text.contains("commit"), "metadata must stay VCS-free");
    }

    #[test]
    fn zero_wall_time_reports_zero_throughput() {
        // A degenerate (instant) run must not divide by zero.
        assert_eq!(BenchSidecar::new("z", 0.0, 5, 0u64).throughput, 0.0);
    }

    #[test]
    fn metadata_never_embeds_vcs_state() {
        let m = BenchMetadata::current();
        let json = serde_json::to_string(&m).unwrap();
        for banned in ["commit", "describe", "branch", "host"] {
            assert!(!json.contains(banned), "{banned} leaked into metadata");
        }
    }
}
