//! Table rendering and JSON artifact emission.

use std::fs;
use std::path::Path;

use serde::Serialize;

/// Renders rows of equal-length string cells as an aligned ASCII table.
///
/// # Panics
///
/// Panics if any row's length differs from the header's.
///
/// # Example
///
/// ```
/// use mpsoc_bench::render_table;
///
/// let table = render_table(
///     &["M", "cycles"],
///     &[vec!["1".into(), "1145".into()], vec!["32".into(), "639".into()]],
/// );
/// assert!(table.contains("M"));
/// assert!(table.contains("639"));
/// ```
pub fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row width must match header");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: Vec<&str>, widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, (cell, w)) in cells.iter().zip(widths).enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{cell:>w$}", w = w));
        }
        line.push('\n');
        line
    };
    out.push_str(&fmt_row(header.to_vec(), &widths));
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    out.push_str(&fmt_row(sep.iter().map(String::as_str).collect(), &widths));
    for row in rows {
        out.push_str(&fmt_row(row.iter().map(String::as_str).collect(), &widths));
    }
    out
}

/// Writes a serializable result as pretty-printed JSON, creating parent
/// directories as needed.
///
/// # Errors
///
/// I/O and serialization failures.
pub fn write_json<T: Serialize>(path: &Path, value: &T) -> Result<(), Box<dyn std::error::Error>> {
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    fs::write(path, serde_json::to_string_pretty(value)?)?;
    Ok(())
}

/// Writes rows of cells as an RFC-4180-ish CSV file (quotes any cell
/// containing a comma, quote or newline), creating parent directories as
/// needed.
///
/// # Errors
///
/// I/O failures.
pub fn write_csv(
    path: &Path,
    header: &[&str],
    rows: &[Vec<String>],
) -> Result<(), Box<dyn std::error::Error>> {
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    let quote = |cell: &str| -> String {
        if cell.contains([',', '"', '\n']) {
            format!("\"{}\"", cell.replace('"', "\"\""))
        } else {
            cell.to_owned()
        }
    };
    let mut out = String::new();
    out.push_str(
        &header
            .iter()
            .map(|c| quote(c))
            .collect::<Vec<_>>()
            .join(","),
    );
    out.push('\n');
    for row in rows {
        out.push_str(&row.iter().map(|c| quote(c)).collect::<Vec<_>>().join(","));
        out.push('\n');
    }
    fs::write(path, out)?;
    Ok(())
}

/// Parses the common CLI arguments of the experiment binaries:
/// `--json <path>` selects a JSON artifact destination.
pub fn json_arg() -> Option<std::path::PathBuf> {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--json" {
            return args.next().map(Into::into);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_aligned() {
        let t = render_table(
            &["a", "bbbb"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        let widths: Vec<usize> = lines.iter().map(|l| l.len()).collect();
        assert!(widths.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn ragged_rows_panic() {
        render_table(&["a"], &[vec!["1".into(), "2".into()]]);
    }

    #[test]
    fn csv_quotes_only_when_needed() {
        let dir = std::env::temp_dir().join("mpsoc-bench-csv-test");
        let path = dir.join("t.csv");
        write_csv(
            &path,
            &["a", "b,with,commas"],
            &[vec!["1".into(), "say \"hi\"".into()]],
        )
        .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let mut lines = text.lines();
        assert_eq!(lines.next(), Some("a,\"b,with,commas\""));
        assert_eq!(lines.next(), Some("1,\"say \"\"hi\"\"\""));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn json_round_trips_through_disk() {
        let dir = std::env::temp_dir().join("mpsoc-bench-test");
        let path = dir.join("x.json");
        write_json(&path, &vec![1, 2, 3]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains('1'));
        std::fs::remove_dir_all(&dir).ok();
    }
}
