//! Interference study: co-resident DAXPY tenants on disjoint cluster
//! partitions of one bandwidth-constrained SoC, swept over tenant count
//! × offered load × problem size:
//!
//! ```text
//! cargo run --release -p mpsoc-bench --bin interference -- \
//!     [--smoke] [--json out.json]
//! ```
//!
//! Every tenant runs a closed-loop stream of DAXPY offloads on its own
//! partition of the *shared* SoC (one NoC switch tree, one HBM
//! bandwidth/AMO model, one serial host core), driven through the
//! concurrent-session API. The study reports, per configuration, the
//! solo service time (same partition size, otherwise-idle SoC), the
//! mean shared service time, the slowdown, and how much of the
//! slowdown the SoC's per-job `contention.*` attribution (NoC stall +
//! HBM queueing + AMO wait + host-queue wait) accounts for.
//!
//! The full sweep then refits the paper's Eq. 1 with a contention term,
//!
//! ```text
//! t̂(M, N, T) = c₀ + c_mem·N + c_comp·N/M + c_int·N·(T − 1)
//! ```
//!
//! and compares its MAPE against the contention-blind three-parameter
//! fit on the same co-resident samples.
//!
//! The binary asserts its own headline claims — every result verifies
//! against the golden reference, at least one two-tenant configuration
//! makes *every* co-resident measurably slower than solo with the
//! slowdown accounted by the tagged contention counters, and (full
//! sweep) `c_int > 0` with a strictly better MAPE — and exits non-zero
//! otherwise, so CI can use `--smoke` as a determinism-checked smoke
//! test.

use std::collections::BTreeMap;

use mpsoc_bench::{json_arg, render_table, write_json};
use mpsoc_kernels::{Daxpy, Kernel};
use mpsoc_offload::{ClusterMask, JobId, OffloadStrategy, Offloader, SessionStep};
use mpsoc_sim::rng::SplitMix64;
use mpsoc_sim::Cycle;
use mpsoc_soc::SocConfig;
use serde::Serialize;

/// Operand seed; runs are deterministic in it.
const SEED: u64 = 0x1A7E_2FEE;
/// HBM words per cycle — deliberately scarce so co-resident DMA and
/// host marshalling traffic queue against each other (the default SoC
/// provisions 512).
const MEM_WORDS_PER_CYCLE: u64 = 8;
/// Host marshalling throughput, similarly constrained (default 12).
const HOST_PREP_WORDS_PER_CYCLE: u64 = 4;

/// One `(tenants, partition size, N, load)` cell of the sweep.
#[derive(Debug, Clone, Serialize)]
struct InterferenceRow {
    /// Co-resident tenants.
    tenants: usize,
    /// Clusters per tenant partition.
    clusters_per_tenant: usize,
    /// DAXPY problem size per job.
    n: u64,
    /// Offered load per tenant (fraction of its solo service rate).
    load: f64,
    /// Jobs each tenant streamed.
    jobs_per_tenant: usize,
    /// Solo service time on an otherwise-idle SoC, same partition size.
    solo_cycles: u64,
    /// Contention a *solo* job already attributes to itself (its own
    /// DMA bursts queue behind its own reserved HBM bandwidth on this
    /// deliberately scarce configuration); the interference signal is
    /// the excess over this baseline.
    solo_contention_cycles: f64,
    /// Mean service time across all tenants' jobs in company.
    mean_service_cycles: f64,
    /// Mean service time of the *least*-slowed tenant — when even this
    /// exceeds solo, every co-resident is measurably slower.
    best_tenant_mean_cycles: f64,
    /// Mean service time of the most-slowed tenant.
    worst_tenant_mean_cycles: f64,
    /// `mean_service_cycles / solo_cycles`.
    slowdown: f64,
    /// Mean per-job NoC-stall + HBM-queue + AMO-wait attribution.
    mean_contention_cycles: f64,
    /// Mean per-job wait for the serial host core.
    mean_host_wait_cycles: f64,
    /// Fraction of the per-job slowdown (shared − solo service cycles)
    /// covered by the *excess* contention attribution (shared − solo
    /// contention, plus host-queue wait); can exceed 1 because queue
    /// cycles of overlapping requests are summed per request, not
    /// critical-pathed. 1.0 when there is no slowdown to explain.
    accounted_fraction: f64,
}

/// Eq. 1 refit with the contention term, against the plain fit.
#[derive(Debug, Clone, Serialize)]
struct ContentionFit {
    /// Fixed offload cost (cycles).
    c0: f64,
    /// Per-element memory-movement cost.
    c_mem: f64,
    /// Per-element-per-cluster compute cost.
    c_comp: f64,
    /// Per-element cost of each *additional* co-resident tenant.
    c_int: f64,
    /// MAPE of the four-parameter model over the co-resident samples.
    mape_with_contention: f64,
    /// MAPE of the contention-blind `t̂(M, N)` fit on the same samples.
    mape_without_contention: f64,
}

/// The JSON artifact.
#[derive(Debug, Serialize)]
struct InterferenceReport {
    clusters: usize,
    mem_words_per_cycle: u64,
    host_prep_words_per_cycle: u64,
    seed: u64,
    smoke: bool,
    rows: Vec<InterferenceRow>,
    /// `None` in smoke mode (too few samples to pose the fit).
    fit: Option<ContentionFit>,
}

/// Aggregates from one shared-session run.
struct SharedOutcome {
    per_tenant_mean: Vec<f64>,
    mean_service: f64,
    mean_contention: f64,
    mean_host_wait: f64,
}

/// One tenant's job stream: what every co-resident submits and how
/// often.
struct Stream<'a> {
    kernel: &'a Daxpy,
    x: &'a [f64],
    y: &'a [f64],
    /// Nominal interarrival gap (cycles) between a tenant's jobs.
    gap: u64,
    jobs_per_tenant: usize,
}

/// Streams `jobs_per_tenant` DAXPYs per tenant through one shared
/// session: tenant `t` owns clusters `[t·m, (t+1)·m)`, submits job `j`
/// at the later of its nominal arrival `j·gap` and its previous
/// completion (a tenant never overlaps itself — the SoC would reject
/// the partition), and every completion is verified against the golden
/// reference.
fn run_shared(
    config: &SocConfig,
    tenants: usize,
    m: usize,
    stream: &Stream<'_>,
) -> Result<SharedOutcome, Box<dyn std::error::Error>> {
    let &Stream {
        kernel,
        x,
        y,
        gap,
        jobs_per_tenant,
    } = stream;
    let mut off = Offloader::new(config.clone())?;
    off.begin_jobs();
    let mut owner: BTreeMap<JobId, usize> = BTreeMap::new();
    let mut submitted = vec![0usize; tenants];
    let mut busy = vec![false; tenants];
    let mut next_free = vec![0u64; tenants];
    let mut services: Vec<Vec<u64>> = vec![Vec::new(); tenants];
    let mut contention = 0u64;
    let mut host_wait = 0u64;
    let total = tenants * jobs_per_tenant;
    let mut done = 0usize;
    while done < total {
        for t in 0..tenants {
            if !busy[t] && submitted[t] < jobs_per_tenant {
                let nominal = submitted[t] as u64 * gap;
                let at = Cycle::new(nominal.max(next_free[t]));
                let mask = ClusterMask::range(t * m, m);
                let job = off.submit_at(kernel, x, y, mask, OffloadStrategy::extended(), at)?;
                owner.insert(job, t);
                submitted[t] += 1;
                busy[t] = true;
            }
        }
        match off.advance_jobs(Cycle::MAX)? {
            SessionStep::Completed(run) => {
                let t = owner
                    .remove(&run.job)
                    .expect("completion for a submitted job");
                busy[t] = false;
                next_free[t] = run.finished_at.as_u64();
                services[t].push(run.run.cycles());
                contention += run.contention.total_cycles();
                host_wait += run.host_wait_cycles;
                assert!(
                    run.run.verify(kernel, x, y).passed(),
                    "tenant {t} result must verify in company"
                );
                done += 1;
            }
            SessionStep::Horizon => unreachable!("advancing to Cycle::MAX never pauses"),
            SessionStep::Idle => panic!("session drained with {} jobs outstanding", total - done),
        }
    }
    let per_tenant_mean: Vec<f64> = services
        .iter()
        .map(|s| s.iter().sum::<u64>() as f64 / s.len() as f64)
        .collect();
    Ok(SharedOutcome {
        mean_service: services.iter().flatten().sum::<u64>() as f64 / total as f64,
        per_tenant_mean,
        mean_contention: contention as f64 / total as f64,
        mean_host_wait: host_wait as f64 / total as f64,
    })
}

/// Least squares via normal equations and Gaussian elimination with
/// partial pivoting; `rows` are `(features, target)`.
fn least_squares(rows: &[(Vec<f64>, f64)], k: usize) -> Vec<f64> {
    let mut ata = vec![vec![0.0f64; k + 1]; k];
    for (f, t) in rows {
        for i in 0..k {
            for j in 0..k {
                ata[i][j] += f[i] * f[j];
            }
            ata[i][k] += f[i] * t;
        }
    }
    for col in 0..k {
        let pivot = (col..k)
            .max_by(|&a, &b| ata[a][col].abs().total_cmp(&ata[b][col].abs()))
            .expect("non-empty");
        ata.swap(col, pivot);
        assert!(ata[col][col].abs() > 1e-12, "singular design matrix");
        let pivot_row = ata[col].clone();
        for row in ata.iter_mut().skip(col + 1) {
            let factor = row[col] / pivot_row[col];
            for (dst, &p) in row[col..=k].iter_mut().zip(&pivot_row[col..=k]) {
                *dst -= factor * p;
            }
        }
    }
    let mut c = vec![0.0f64; k];
    for row in (0..k).rev() {
        let mut acc = ata[row][k];
        for j in row + 1..k {
            acc -= ata[row][j] * c[j];
        }
        c[row] = acc / ata[row][row];
    }
    c
}

/// Mean absolute percentage error of `predict` over `rows`.
fn mape(rows: &[(Vec<f64>, f64)], c: &[f64]) -> f64 {
    let total: f64 = rows
        .iter()
        .map(|(f, t)| {
            let pred: f64 = f.iter().zip(c).map(|(a, b)| a * b).sum();
            ((pred - t) / t).abs()
        })
        .sum();
    100.0 * total / rows.len() as f64
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let smoke = std::env::args().any(|a| a == "--smoke");

    let clusters = if smoke { 16 } else { 32 };
    let mut config = SocConfig::with_clusters(clusters);
    config.mem_words_per_cycle = MEM_WORDS_PER_CYCLE;
    config.host_prep_words_per_cycle = HOST_PREP_WORDS_PER_CYCLE;

    // (tenants, clusters per tenant): partition size varies
    // independently of tenant count so the N/M and N·(T−1) columns of
    // the refit stay linearly independent.
    let partitions: &[(usize, usize)] = if smoke {
        &[(1, 8), (2, 8)]
    } else {
        &[
            (1, 4),
            (1, 8),
            (1, 16),
            (2, 4),
            (2, 8),
            (2, 16),
            (4, 4),
            (4, 8),
        ]
    };
    let sizes: &[u64] = if smoke { &[1024] } else { &[1024, 2048, 4096] };
    let loads: &[f64] = if smoke { &[1.0] } else { &[0.5, 1.0] };
    let jobs_per_tenant = if smoke { 3 } else { 4 };

    let kernel = Daxpy::new(2.0);
    let mut solo_cache: BTreeMap<(usize, u64), (u64, f64)> = BTreeMap::new();
    let mut rows: Vec<InterferenceRow> = Vec::new();

    for &(tenants, m) in partitions {
        for &n in sizes {
            let mut rng = SplitMix64::new(SEED ^ n);
            let mut x = vec![0.0; n as usize * kernel.x_words_per_elem() as usize];
            let mut y = vec![0.0; n as usize];
            rng.fill_f64(&mut x, -8.0, 8.0);
            rng.fill_f64(&mut y, -8.0, 8.0);

            // A one-tenant one-job session is cycle-identical to the
            // blocking path (asserted by the cross-stack property
            // tests), and unlike `offload_to` it also reports the
            // job's *solo* contention attribution — the baseline the
            // shared runs are accounted against.
            let (solo, solo_contention) = match solo_cache.get(&(m, n)) {
                Some(&pair) => pair,
                None => {
                    let one = run_shared(
                        &config,
                        1,
                        m,
                        &Stream {
                            kernel: &kernel,
                            x: &x,
                            y: &y,
                            gap: 1,
                            jobs_per_tenant: 1,
                        },
                    )?;
                    let pair = (one.mean_service as u64, one.mean_contention);
                    solo_cache.insert((m, n), pair);
                    pair
                }
            };

            for &load in loads {
                let gap = (solo as f64 / load).ceil() as u64;
                let shared = run_shared(
                    &config,
                    tenants,
                    m,
                    &Stream {
                        kernel: &kernel,
                        x: &x,
                        y: &y,
                        gap,
                        jobs_per_tenant,
                    },
                )?;
                let best = shared
                    .per_tenant_mean
                    .iter()
                    .copied()
                    .fold(f64::INFINITY, f64::min);
                let worst = shared.per_tenant_mean.iter().copied().fold(0.0, f64::max);
                let excess = shared.mean_service - solo as f64;
                let excess_contention =
                    (shared.mean_contention - solo_contention) + shared.mean_host_wait;
                let accounted = if excess <= 0.0 {
                    1.0
                } else {
                    excess_contention / excess
                };
                rows.push(InterferenceRow {
                    tenants,
                    clusters_per_tenant: m,
                    n,
                    load,
                    jobs_per_tenant,
                    solo_cycles: solo,
                    solo_contention_cycles: solo_contention,
                    mean_service_cycles: shared.mean_service,
                    best_tenant_mean_cycles: best,
                    worst_tenant_mean_cycles: worst,
                    slowdown: shared.mean_service / solo as f64,
                    mean_contention_cycles: shared.mean_contention,
                    mean_host_wait_cycles: shared.mean_host_wait,
                    accounted_fraction: accounted,
                });
            }
        }
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.tenants.to_string(),
                r.clusters_per_tenant.to_string(),
                r.n.to_string(),
                format!("{:.2}", r.load),
                r.solo_cycles.to_string(),
                format!("{:.1}", r.mean_service_cycles),
                format!("{:.3}", r.slowdown),
                format!("{:.1}", r.mean_contention_cycles),
                format!("{:.1}", r.mean_host_wait_cycles),
                format!("{:.2}", r.accounted_fraction),
            ]
        })
        .collect();
    println!(
        "Interference sweep — {clusters}-cluster SoC, HBM {MEM_WORDS_PER_CYCLE} w/cyc, \
         host prep {HOST_PREP_WORDS_PER_CYCLE} w/cyc, DAXPY closed-loop streams\n"
    );
    println!(
        "{}",
        render_table(
            &[
                "T", "M/ten", "N", "load", "solo", "shared", "slowdn", "cont/job", "wait/job",
                "acct"
            ],
            &table,
        )
    );

    // Headline claim: some two-tenant configuration slows *every*
    // co-resident down measurably, and the tagged contention counters
    // account for the bulk of it.
    let witness = rows
        .iter()
        .filter(|r| r.tenants == 2 && r.load == 1.0)
        .max_by(|a, b| a.slowdown.total_cmp(&b.slowdown))
        .expect("sweep contains two-tenant full-load configurations");
    println!(
        "witness: T=2 M={} N={} — every tenant ≥ {:.1}% slower than solo, \
         {:.0}% of the slowdown attributed to contention + host queueing",
        witness.clusters_per_tenant,
        witness.n,
        100.0 * (witness.best_tenant_mean_cycles / witness.solo_cycles as f64 - 1.0),
        100.0 * witness.accounted_fraction,
    );
    assert!(
        witness.best_tenant_mean_cycles > 1.02 * witness.solo_cycles as f64,
        "emergent interference: every co-resident must run ≥ 2% slower than solo \
         (best tenant {} vs solo {})",
        witness.best_tenant_mean_cycles,
        witness.solo_cycles
    );
    assert!(
        witness.mean_contention_cycles - witness.solo_contention_cycles
            + witness.mean_host_wait_cycles
            > 0.0,
        "the slowdown must be visible in the tagged contention counters beyond the \
         solo baseline"
    );
    assert!(
        witness.accounted_fraction >= 0.5,
        "contention + host-wait attribution must account for at least half of the \
         slowdown (got {:.2})",
        witness.accounted_fraction
    );

    // Refit Eq. 1 with the contention term over the full-load samples.
    let fit = if smoke {
        None
    } else {
        let samples: Vec<(Vec<f64>, f64)> = rows
            .iter()
            .filter(|r| r.load == 1.0)
            .map(|r| {
                let n = r.n as f64;
                let m = r.clusters_per_tenant as f64;
                let t = r.tenants as f64;
                (vec![1.0, n, n / m, n * (t - 1.0)], r.mean_service_cycles)
            })
            .collect();
        let with = least_squares(&samples, 4);
        let without_features: Vec<(Vec<f64>, f64)> =
            samples.iter().map(|(f, t)| (f[..3].to_vec(), *t)).collect();
        let without = least_squares(&without_features, 3);
        let fit = ContentionFit {
            c0: with[0],
            c_mem: with[1],
            c_comp: with[2],
            c_int: with[3],
            mape_with_contention: mape(&samples, &with),
            mape_without_contention: mape(&without_features, &without),
        };
        println!(
            "\nEq. 1 + contention refit: t̂ = {:.1} + {:.4}·N + {:.4}·N/M + {:.4}·N·(T−1)\n\
             MAPE {:.2}% with the contention term vs {:.2}% without",
            fit.c0,
            fit.c_mem,
            fit.c_comp,
            fit.c_int,
            fit.mape_with_contention,
            fit.mape_without_contention
        );
        assert!(
            fit.c_int > 0.0,
            "the fitted contention coefficient must be positive (got {})",
            fit.c_int
        );
        assert!(
            fit.mape_with_contention < fit.mape_without_contention,
            "the contention term must improve the fit ({:.2}% vs {:.2}%)",
            fit.mape_with_contention,
            fit.mape_without_contention
        );
        Some(fit)
    };

    if let Some(path) = json_arg() {
        let report = InterferenceReport {
            clusters,
            mem_words_per_cycle: MEM_WORDS_PER_CYCLE,
            host_prep_words_per_cycle: HOST_PREP_WORDS_PER_CYCLE,
            seed: SEED,
            smoke,
            rows,
            fit,
        };
        write_json(&path, &report)?;
        println!("\nwrote {}", path.display());
    }
    Ok(())
}
