//! **Pipelining study** (extension beyond the paper): double-buffered
//! cluster schedules overlap DMA with compute, shrinking the parallel
//! term of Eq. 1 from `(c_dma + c_compute)·N/M` toward
//! `max(c_dma, c_compute)·N/M`. This sweep quantifies the win across
//! problem sizes and stage counts on the extended runtime.
//!
//! ```text
//! cargo run --release -p mpsoc-bench --bin pipeline [-- --json out.json]
//! ```

use mpsoc_bench::{json_arg, render_table, write_json};
use mpsoc_kernels::Daxpy;
use mpsoc_offload::{OffloadStrategy, Offloader};
use mpsoc_sim::rng::SplitMix64;
use mpsoc_soc::SocConfig;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Row {
    n: u64,
    m: usize,
    stages_1: u64,
    stages_2: u64,
    stages_4: u64,
    best_speedup: f64,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut off = Offloader::new(SocConfig::manticore())?;
    let kernel = Daxpy::new(2.0);
    let mut rows = Vec::new();

    for &n in &[1024u64, 4096, 16384] {
        let mut rng = SplitMix64::new(n);
        let mut x = vec![0.0; n as usize];
        let mut y = vec![0.0; n as usize];
        rng.fill_f64(&mut x, -2.0, 2.0);
        rng.fill_f64(&mut y, -2.0, 2.0);
        for &m in &[4usize, 16, 32] {
            let mut t = [0u64; 3];
            for (i, stages) in [1usize, 2, 4].into_iter().enumerate() {
                let run =
                    off.offload_pipelined(&kernel, &x, &y, m, OffloadStrategy::extended(), stages)?;
                assert!(run.verify(&kernel, &x, &y).passed());
                t[i] = run.cycles();
            }
            rows.push(Row {
                n,
                m,
                stages_1: t[0],
                stages_2: t[1],
                stages_4: t[2],
                best_speedup: t[0] as f64 / t[1].min(t[2]) as f64,
            });
        }
    }

    println!("Pipelined offload — DAXPY runtime [cycles] by stage count\n");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.n.to_string(),
                r.m.to_string(),
                r.stages_1.to_string(),
                r.stages_2.to_string(),
                r.stages_4.to_string(),
                format!("{:.3}", r.best_speedup),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["N", "M", "1 stage", "2 stages", "4 stages", "best ×"],
            &table
        )
    );

    // The crossover mirrors the paper's thesis: fine-grained work is
    // overhead-dominated. Pipelining adds per-stage overhead (core
    // restart, pipeline fill), so it pays only where per-cluster slices
    // are large.
    let coarse_wins = rows
        .iter()
        .filter(|r| r.n / r.m as u64 >= 1024)
        .all(|r| r.stages_2.min(r.stages_4) < r.stages_1);
    let fine_loses = rows
        .iter()
        .filter(|r| r.n / r.m as u64 <= 64)
        .all(|r| r.stages_2.min(r.stages_4) >= r.stages_1.saturating_sub(10));
    println!("pipelining wins where per-cluster slices are large (N/M ≥ 1024): {coarse_wins}");
    println!("and is overhead-bound at fine granularity (N/M ≤ 64): {fine_loses}");
    println!(
        "largest win {:.3}×",
        rows.iter().map(|r| r.best_speedup).fold(0.0f64, f64::max)
    );

    if let Some(path) = json_arg() {
        write_json(&path, &rows)?;
        println!("\nwrote {}", path.display());
    }
    Ok(())
}
