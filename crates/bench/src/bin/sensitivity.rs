//! **Sensitivity analysis / design-space exploration**: how the fitted
//! Eq. 1 coefficients respond to the microarchitectural parameters of
//! the co-design. This is the experiment a designer would run to decide
//! where the next hardware dollar goes: the constant `c₀` tracks the
//! wake/ISR/setup latencies one-for-one, the serial term tracks the
//! host's preparation throughput, and the parallel term tracks the DMA
//! width — while the *form* of the model survives every variation.
//!
//! ```text
//! cargo run --release -p mpsoc-bench --bin sensitivity [-- --json out.json]
//! ```

use mpsoc_bench::{json_arg, render_table, write_json, Harness, PAPER_M};
use mpsoc_offload::{RuntimeModel, Sample};
use mpsoc_soc::SocConfig;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Row {
    variant: String,
    c0: f64,
    c_mem: f64,
    c_comp: f64,
    r_squared: f64,
}

fn fit_variant(name: &str, config: SocConfig) -> Result<Row, Box<dyn std::error::Error>> {
    let mut harness = Harness::with_config(config)?;
    let ns = [384u64, 768, 1536, 3072];
    let mut samples = Vec::new();
    for &n in &ns {
        for &m in &PAPER_M {
            let cycles = harness.measure_daxpy(n, m, mpsoc_offload::OffloadStrategy::extended())?;
            samples.push(Sample {
                m: m as u64,
                n,
                cycles: cycles as f64,
            });
        }
    }
    let fit = RuntimeModel::fit(&samples)?;
    Ok(Row {
        variant: name.to_owned(),
        c0: fit.model.c0,
        c_mem: fit.model.c_mem,
        c_comp: fit.model.c_comp,
        r_squared: fit.r_squared,
    })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rows = Vec::new();

    rows.push(fit_variant(
        "calibrated (baseline config)",
        SocConfig::manticore(),
    )?);

    let mut cfg = SocConfig::manticore();
    cfg.cluster_wake_cycles *= 2;
    rows.push(fit_variant("2x cluster wake latency", cfg)?);

    let mut cfg = SocConfig::manticore();
    cfg.host_prep_words_per_cycle = 24;
    rows.push(fit_variant("2x host prep throughput", cfg)?);

    let mut cfg = SocConfig::manticore();
    cfg.dma_words_per_cycle = 32;
    rows.push(fit_variant("2x cluster DMA width", cfg)?);

    let mut cfg = SocConfig::manticore();
    cfg.noc.hop_latency = mpsoc_sim::Cycle::new(6);
    rows.push(fit_variant("2x NoC hop latency", cfg)?);

    let mut cfg = SocConfig::manticore();
    cfg.irq_latency += 40;
    rows.push(fit_variant("+40 cycles IRQ latency", cfg)?);

    println!("Sensitivity of the fitted Eq. 1 coefficients to the microarchitecture\n");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.variant.clone(),
                format!("{:.1}", r.c0),
                format!("{:.4}", r.c_mem),
                format!("{:.4}", r.c_comp),
                format!("{:.6}", r.r_squared),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["variant", "c0", "c_mem", "c_comp", "r²"], &table)
    );

    let base = &rows[0];
    let wake = &rows[1];
    let prep = &rows[2];
    let dma = &rows[3];
    let irq = &rows[5];
    println!(
        "doubling wake latency moves only c0 (Δc0 = {:+.0}, Δc_mem = {:+.4}): {}",
        wake.c0 - base.c0,
        wake.c_mem - base.c_mem,
        (wake.c0 - base.c0) > 20.0 && (wake.c_mem - base.c_mem).abs() < 0.005
    );
    println!(
        "doubling prep throughput halves c_mem ({:.4} -> {:.4}): {}",
        base.c_mem,
        prep.c_mem,
        (prep.c_mem - base.c_mem / 2.0).abs() < 0.02
    );
    println!(
        "doubling DMA width moves only c_comp ({:.4} -> {:.4}): {}",
        base.c_comp,
        dma.c_comp,
        dma.c_comp < base.c_comp - 0.05 && (dma.c_mem - base.c_mem).abs() < 0.005
    );
    println!(
        "+40 IRQ cycles adds ~40 to c0 (Δc0 = {:+.0})",
        irq.c0 - base.c0
    );
    println!(
        "the Eq. 1 form survives every variant (r² > 0.9999): {}",
        rows.iter().all(|r| r.r_squared > 0.9999)
    );

    if let Some(path) = json_arg() {
        write_json(&path, &rows)?;
        println!("\nwrote {}", path.display());
    }
    Ok(())
}
