//! Regenerates **Eq. 3**: the offload decision `M_min = ⌈c_comp·N /
//! (t_max − c₀ − c_mem·N)⌉`, validated against simulation — the deadline
//! must be met at `M_min` and missed at `M_min − 1`.
//!
//! ```text
//! cargo run --release -p mpsoc-bench --bin decision [-- --json out.json]
//! ```

use mpsoc_bench::{json_arg, render_table, write_json, Harness};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut harness = Harness::new()?;
    let (model, rows) = harness.decision_table(1.0)?;

    println!("Eq. 3 — offload decision under a deadline (model: {model})\n");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.n.to_string(),
                format!("{:.0}", r.t_max),
                r.m_min.map_or("-".to_owned(), |m| m.to_string()),
                r.simulated_at_m_min
                    .map_or("-".to_owned(), |t| t.to_string()),
                r.simulated_below.map_or("-".to_owned(), |t| t.to_string()),
                if r.confirmed { "yes" } else { "NO" }.to_owned(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["N", "t_max", "M_min", "t(M_min)", "t(M_min-1)", "confirmed"],
            &table
        )
    );
    let all_confirmed = rows.iter().all(|r| r.confirmed);
    println!("all decisions confirmed by simulation (±1%): {all_confirmed}");

    if let Some(path) = json_arg() {
        write_json(&path, &rows)?;
        println!("\nwrote {}", path.display());
    }
    Ok(())
}
