//! Regenerates **Fig. 1 (left)**: runtime of a 1024-element DAXPY for
//! 1–32 clusters, baseline vs extended (multicast + credit counter).
//!
//! ```text
//! cargo run --release -p mpsoc-bench --bin fig1_left [-- --json out.json]
//! ```

use mpsoc_bench::{json_arg, render_table, write_json, Fig1LeftRow, Harness};
use mpsoc_offload::OffloadStrategy;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut harness = Harness::new()?;
    let dense = std::env::args().any(|a| a == "--dense");
    let rows: Vec<Fig1LeftRow> = if dense {
        // Every cluster count 1..=32, for plotting the full curve.
        (1..=32usize)
            .map(|m| {
                Ok::<_, Box<dyn std::error::Error>>(Fig1LeftRow {
                    m,
                    baseline: harness.measure_daxpy(1024, m, OffloadStrategy::baseline())?,
                    extended: harness.measure_daxpy(1024, m, OffloadStrategy::extended())?,
                })
            })
            .collect::<Result<_, _>>()?
    } else {
        harness.fig1_left()?
    };

    println!("Fig. 1 (left) — DAXPY N=1024 runtime [cycles == ns @ 1 GHz]\n");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.m.to_string(),
                r.baseline.to_string(),
                r.extended.to_string(),
                r.gap().to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["M", "baseline", "extended", "gap"], &table)
    );

    let min_base = rows.iter().min_by_key(|r| r.baseline).expect("rows");
    let last = rows.last().expect("rows");
    println!(
        "baseline global minimum at M={} ({} cycles)",
        min_base.m, min_base.baseline
    );
    println!(
        "extended monotonically decreasing: {}",
        rows.windows(2).all(|w| w[1].extended <= w[0].extended)
    );
    println!("gap at M=32: {} cycles (paper: more than 300)", last.gap());

    if let Some(path) = json_arg() {
        write_json(&path, &rows)?;
        println!("\nwrote {}", path.display());
    }
    Ok(())
}
