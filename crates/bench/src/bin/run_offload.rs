//! A swiss-army CLI for driving single offloads — the quickest way to
//! poke at the simulated SoC without writing code:
//!
//! ```text
//! cargo run --release -p mpsoc-bench --bin run_offload -- \
//!     [--kernel daxpy|daxpy-ssr|axpby|scale|vecadd|memset|dot|sum|gemv|stencil3] \
//!     [--n 1024] [--m 8] [--strategy baseline|extended] [--stages 1] \
//!     [--clusters 32] [--timeline] [--host] [--seed 42]
//! ```
//!
//! Prints the runtime, phase breakdown, verification verdict, energy
//! estimate and (optionally) the per-cluster timeline; `--host` also
//! executes the kernel on the CVA6-class host core for comparison.

use mpsoc_kernels::{
    Axpby, Daxpy, DaxpySsr, Dot, Gemv, Kernel, Memset, Scale, Stencil3, Sum, VecAdd,
};
use mpsoc_offload::{OffloadStrategy, Offloader};
use mpsoc_sim::rng::SplitMix64;
use mpsoc_soc::SocConfig;

struct Args {
    kernel: String,
    n: u64,
    m: usize,
    strategy: OffloadStrategy,
    stages: usize,
    clusters: usize,
    timeline: bool,
    host: bool,
    seed: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        kernel: "daxpy".to_owned(),
        n: 1024,
        m: 8,
        strategy: OffloadStrategy::extended(),
        stages: 1,
        clusters: 32,
        timeline: false,
        host: false,
        seed: 0xC0FFEE,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match flag.as_str() {
            "--kernel" => args.kernel = value("--kernel")?,
            "--n" => args.n = value("--n")?.parse().map_err(|e| format!("--n: {e}"))?,
            "--m" => args.m = value("--m")?.parse().map_err(|e| format!("--m: {e}"))?,
            "--stages" => {
                args.stages = value("--stages")?
                    .parse()
                    .map_err(|e| format!("--stages: {e}"))?
            }
            "--clusters" => {
                args.clusters = value("--clusters")?
                    .parse()
                    .map_err(|e| format!("--clusters: {e}"))?
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--strategy" => {
                args.strategy = match value("--strategy")?.as_str() {
                    "baseline" => OffloadStrategy::baseline(),
                    "extended" => OffloadStrategy::extended(),
                    other => return Err(format!("unknown strategy '{other}'")),
                }
            }
            "--timeline" => args.timeline = true,
            "--host" => args.host = true,
            other => {
                return Err(format!(
                    "unknown flag '{other}' (see the bin's doc comment)"
                ))
            }
        }
    }
    Ok(args)
}

fn kernel_by_name(name: &str) -> Result<Box<dyn Kernel>, String> {
    Ok(match name {
        "daxpy" => Box::new(Daxpy::new(2.0)),
        "daxpy-ssr" => Box::new(DaxpySsr::new(2.0)),
        "axpby" => Box::new(Axpby::new(1.5, -0.5)),
        "scale" => Box::new(Scale::new(3.0)),
        "vecadd" => Box::new(VecAdd::new()),
        "memset" => Box::new(Memset::new(1.0)),
        "dot" => Box::new(Dot::new()),
        "sum" => Box::new(Sum::new()),
        "gemv" => Box::new(Gemv::new(vec![0.5, -1.0, 2.0, 0.25])),
        "stencil3" => Box::new(Stencil3::new(0.25, 0.5, 0.25)),
        other => return Err(format!("unknown kernel '{other}'")),
    })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = parse_args().map_err(|e| format!("argument error: {e}"))?;
    let kernel = kernel_by_name(&args.kernel)?;

    let mut rng = SplitMix64::new(args.seed);
    let mut x = vec![0.0; (args.n * kernel.x_words_per_elem()) as usize];
    let mut y = vec![0.0; args.n as usize];
    rng.fill_f64(&mut x, -4.0, 4.0);
    rng.fill_f64(&mut y, -4.0, 4.0);

    let mut offloader = Offloader::new(SocConfig::with_clusters(args.clusters))?;
    let run =
        offloader.offload_pipelined(kernel.as_ref(), &x, &y, args.m, args.strategy, args.stages)?;
    let verify = run.verify(kernel.as_ref(), &x, &y);

    println!(
        "{} | N={} M={} {} stages={}",
        kernel.name(),
        args.n,
        args.m,
        args.strategy,
        args.stages
    );
    println!("runtime : {} cycles (== ns @ 1 GHz)", run.cycles());
    let p = run.outcome.phases;
    println!(
        "phases  : dispatch {} | dma-in {} | compute {} | dma-out {} | sync {}",
        p.last_dispatch.as_u64(),
        p.last_dma_in.as_u64(),
        p.last_compute.as_u64(),
        p.last_dma_out.as_u64(),
        p.sync_done.as_u64()
    );
    println!(
        "energy  : {:.1} nJ | polls: {} | core ops: {}",
        run.outcome.energy.total_pj() / 1000.0,
        run.outcome.poll_iterations,
        run.outcome.total_core_ops()
    );
    println!("verify  : {verify}");
    if args.timeline {
        println!("\n{}", run.outcome.render_timeline(100));
    }
    if args.host {
        let (host_cycles, _) = offloader.run_on_host(kernel.as_ref(), &x, &y)?;
        let speedup = host_cycles as f64 / run.cycles() as f64;
        println!("host    : {host_cycles} cycles (offload speedup {speedup:.2}x)");
    }
    if !verify.passed() {
        return Err(format!("verification failed: {verify}").into());
    }
    Ok(())
}
