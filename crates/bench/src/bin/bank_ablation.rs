//! **Bank-conflict ablation**: the calibrated experiments assume the
//! conflict-free TCDM layout of an optimized kernel (32 banks, 8 cores,
//! disjoint stride-1 streams). This ablation re-runs the DAXPY sweep
//! with cycle-accurate per-bank FCFS arbitration enabled
//! ([`BankMode::Banked`]) to quantify what bank conflicts would cost an
//! unoptimized layout, and to justify the `Ideal` default.
//!
//! ```text
//! cargo run --release -p mpsoc-bench --bin bank_ablation [-- --json out.json]
//! ```

use mpsoc_bench::{json_arg, render_table, write_json, Harness, PAPER_M};
use mpsoc_mem::BankMode;
use mpsoc_offload::OffloadStrategy;
use mpsoc_soc::SocConfig;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Row {
    m: usize,
    ideal: u64,
    banked: u64,
    conflicts: u64,
    slowdown: f64,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 1024;
    let mut ideal = Harness::new()?;
    let mut banked_cfg = SocConfig::manticore();
    banked_cfg.bank_mode = BankMode::Banked;
    let mut banked = Harness::with_config(banked_cfg)?;

    let mut rows = Vec::new();
    for &m in &PAPER_M {
        let t_ideal = ideal.measure_daxpy(n, m, OffloadStrategy::extended())?;
        let kernel = mpsoc_kernels::Daxpy::new(2.0);
        let x: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let y = vec![1.0; n as usize];
        let run =
            banked
                .offloader_mut()
                .offload(&kernel, &x, &y, m, OffloadStrategy::extended())?;
        assert!(
            run.verify(&kernel, &x, &y).passed(),
            "banked mode must stay correct"
        );
        rows.push(Row {
            m,
            ideal: t_ideal,
            banked: run.cycles(),
            conflicts: run.outcome.tcdm_conflicts,
            slowdown: run.cycles() as f64 / t_ideal as f64,
        });
    }

    println!("TCDM bank-conflict ablation — DAXPY N={n}\n");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.m.to_string(),
                r.ideal.to_string(),
                r.banked.to_string(),
                r.conflicts.to_string(),
                format!("{:.3}", r.slowdown),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["M", "ideal", "banked", "conflicts", "slowdown"], &table)
    );
    println!(
        "banked mode is never faster: {}",
        rows.iter().all(|r| r.banked >= r.ideal)
    );
    println!("results remain numerically correct under contention: true (asserted per run)");

    if let Some(path) = json_arg() {
        write_json(&path, &rows)?;
        println!("\nwrote {}", path.display());
    }
    Ok(())
}
