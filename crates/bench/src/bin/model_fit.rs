//! Regenerates **Eq. 1**: fits the runtime model `t̂ = c₀ + c_mem·N +
//! c_comp·N/M` to measured extended-configuration runtimes and compares
//! the coefficients with the paper's `367 + N/4 + 2.6·N/(8M)`.
//!
//! ```text
//! cargo run --release -p mpsoc-bench --bin model_fit [-- --json out.json]
//! ```

use mpsoc_bench::{json_arg, write_json, Harness};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut harness = Harness::new()?;
    let fit = harness.model_fit()?;

    println!(
        "Eq. 1 — offload runtime model (fit on {} samples)\n",
        fit.samples
    );
    println!("  fitted : {}", fit.fitted);
    println!("  paper  : {}", fit.paper);
    println!("  r²     : {:.6}", fit.r_squared);
    println!("  max |err| over fit set: {:.2}%", fit.max_abs_pct_err);
    println!();
    println!(
        "  c₀     : {:.1} vs paper 367 (constant offload overhead)",
        fit.fitted.c0
    );
    println!(
        "  c_mem  : {:.4} vs paper 0.25 (serial data-preparation term)",
        fit.fitted.c_mem
    );
    println!(
        "  c_comp : {:.4} vs paper 0.325 (parallel term; ours folds the\n           per-cluster DMA width in — see EXPERIMENTS.md)",
        fit.fitted.c_comp
    );

    if let Some(path) = json_arg() {
        write_json(&path, &fit)?;
        println!("\nwrote {}", path.display());
    }
    Ok(())
}
