//! **Codegen ablation**: the paper's 2.6 cycles/element/core comes from
//! its compiled scalar DAXPY; Snitch-class cores also offer SSR streams +
//! FREP hardware loops that sustain 1 element/cycle. This ablation runs
//! both codegens through the identical offload machinery and refits the
//! Eq. 1 model for each, showing how the compute share of the parallel
//! coefficient drops from 2.6/8 to 1/8 while everything else stays put.
//!
//! ```text
//! cargo run --release -p mpsoc-bench --bin codegen_ablation [-- --json out.json]
//! ```

use mpsoc_bench::{json_arg, render_table, write_json, Harness, PAPER_M};
use mpsoc_kernels::{Daxpy, DaxpySsr, Kernel};
use mpsoc_offload::{OffloadStrategy, RuntimeModel, Sample};
use mpsoc_sim::rng::SplitMix64;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Row {
    codegen: String,
    c0: f64,
    c_mem: f64,
    c_comp: f64,
    t_1024_32: u64,
    t_8192_4: u64,
}

fn measure(
    harness: &mut Harness,
    kernel: &dyn Kernel,
    n: u64,
    m: usize,
) -> Result<u64, Box<dyn std::error::Error>> {
    let mut rng = SplitMix64::new(n ^ (m as u64) << 40);
    let mut x = vec![0.0; n as usize];
    let mut y = vec![0.0; n as usize];
    rng.fill_f64(&mut x, -2.0, 2.0);
    rng.fill_f64(&mut y, -2.0, 2.0);
    let run = harness
        .offloader_mut()
        .offload(kernel, &x, &y, m, OffloadStrategy::extended())?;
    assert!(run.verify(kernel, &x, &y).passed());
    Ok(run.cycles())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut harness = Harness::new()?;
    let kernels: Vec<(&str, Box<dyn Kernel>)> = vec![
        (
            "scalar (unroll x10, 2.6 cyc/elem)",
            Box::new(Daxpy::new(2.0)),
        ),
        ("ssr+frep (1 cyc/elem)", Box::new(DaxpySsr::new(2.0))),
    ];

    let mut rows = Vec::new();
    for (label, kernel) in &kernels {
        let mut samples = Vec::new();
        for &n in &[512u64, 1024, 2048, 4096] {
            for &m in &PAPER_M {
                samples.push(Sample {
                    m: m as u64,
                    n,
                    cycles: measure(&mut harness, kernel.as_ref(), n, m)? as f64,
                });
            }
        }
        let fit = RuntimeModel::fit(&samples)?;
        rows.push(Row {
            codegen: (*label).to_owned(),
            c0: fit.model.c0,
            c_mem: fit.model.c_mem,
            c_comp: fit.model.c_comp,
            t_1024_32: measure(&mut harness, kernel.as_ref(), 1024, 32)?,
            t_8192_4: measure(&mut harness, kernel.as_ref(), 8192, 4)?,
        });
    }

    println!("Codegen ablation — DAXPY scalar vs SSR+FREP (extended runtime)\n");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.codegen.clone(),
                format!("{:.1}", r.c0),
                format!("{:.4}", r.c_mem),
                format!("{:.4}", r.c_comp),
                r.t_1024_32.to_string(),
                r.t_8192_4.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "codegen",
                "c0",
                "c_mem",
                "c_comp",
                "t(1024,32)",
                "t(8192,4)"
            ],
            &table
        )
    );

    let scalar = &rows[0];
    let ssr = &rows[1];
    // Expected drop: (2.6 - 1.0)/8 = 0.2 in c_comp.
    println!(
        "c_comp drop {:.4} (expected ~0.20 = (2.6-1.0)/8): {}",
        scalar.c_comp - ssr.c_comp,
        ((scalar.c_comp - ssr.c_comp) - 0.2).abs() < 0.03
    );
    println!(
        "c0 and c_mem unchanged (|Δ| < 6 cyc / 0.005): {}",
        (scalar.c0 - ssr.c0).abs() < 6.0 && (scalar.c_mem - ssr.c_mem).abs() < 0.005
    );
    println!(
        "SSR wins end-to-end at the compute-heavy corner t(8192,4): {}",
        ssr.t_8192_4 < scalar.t_8192_4
    );

    if let Some(path) = json_arg() {
        write_json(&path, &rows)?;
        println!("\nwrote {}", path.display());
    }
    Ok(())
}
