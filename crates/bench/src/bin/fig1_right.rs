//! Regenerates **Fig. 1 (right)**: speedup of the extensions over the
//! baseline for various problem sizes and cluster counts.
//!
//! ```text
//! cargo run --release -p mpsoc-bench --bin fig1_right [-- --json out.json]
//! ```

use mpsoc_bench::{json_arg, render_table, write_json, Harness, FIG1_RIGHT_N, PAPER_M};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut harness = Harness::new()?;
    let rows = harness.fig1_right()?;

    println!("Fig. 1 (right) — speedup of extensions over baseline (DAXPY)\n");
    // Matrix view: one row per N, one column per M.
    let mut table = Vec::new();
    for &n in &FIG1_RIGHT_N {
        let mut cells = vec![n.to_string()];
        for &m in &PAPER_M {
            let r = rows
                .iter()
                .find(|r| r.n == n && r.m == m)
                .expect("full grid");
            cells.push(format!("{:.3}", r.speedup));
        }
        table.push(cells);
    }
    let header: Vec<String> = std::iter::once("N \\ M".to_owned())
        .chain(PAPER_M.iter().map(|m| m.to_string()))
        .collect();
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    println!("{}", render_table(&header_refs, &table));

    let all_above_one = rows.iter().all(|r| r.speedup > 1.0);
    let max = rows
        .iter()
        .max_by(|a, b| a.speedup.total_cmp(&b.speedup))
        .expect("rows");
    println!("speedup always > 1: {all_above_one}");
    println!(
        "max speedup {:.3} at N={}, M={} (paper: 1.479 at N=1024, M=32)",
        max.speedup, max.n, max.m
    );
    // Monotone decrease with N at fixed M.
    let monotone = PAPER_M.iter().all(|&m| {
        let series: Vec<f64> = FIG1_RIGHT_N
            .iter()
            .map(|&n| {
                rows.iter()
                    .find(|r| r.n == n && r.m == m)
                    .expect("full grid")
                    .speedup
            })
            .collect();
        series.windows(2).all(|w| w[1] <= w[0] + 0.02)
    });
    println!("speedup decreases with N at fixed M: {monotone}");

    if let Some(path) = json_arg() {
        write_json(&path, &rows)?;
        println!("\nwrote {}", path.display());
    }
    Ok(())
}
