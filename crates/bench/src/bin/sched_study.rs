//! The **multi-tenant scheduling study**: offered load × policy ×
//! machine size, on service times measured against the simulated SoC.
//!
//! For each machine size, kernel models are calibrated from measured
//! offloads, one Poisson job stream per load point is generated, and
//! every policy replays the *same* stream. The table reports
//! deadline-miss rate, utilization, p95 latency and rejection rate; the
//! model-guided packer should beat FIFO first-fit on miss rate at equal
//! utilization.
//!
//! ```text
//! cargo run --release -p mpsoc-bench --bin sched_study [-- --json out.json]
//! ```

use mpsoc_bench::{json_arg, render_table, write_json};
use mpsoc_offload::Offloader;
use mpsoc_sched::{
    all_policies, calibrate, ArrivalPattern, CalibrationGrid, Engine, ServiceBackend, Workload,
};
use mpsoc_soc::SocConfig;
use serde::{Deserialize, Serialize};

/// One `(machine, load, policy)` cell of the study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct SchedStudyRow {
    clusters: usize,
    offered_load: f64,
    policy: String,
    jobs: usize,
    offloaded: usize,
    host_runs: usize,
    rejected: usize,
    deadline_misses: usize,
    miss_rate: f64,
    cluster_utilization: f64,
    p95_latency: u64,
    throughput_per_mcycle: f64,
}

const JOBS: usize = 150;
const SEED: u64 = 0x5EED_DA7E;
const LOADS: [f64; 4] = [0.5, 1.0, 1.5, 2.5];
const MACHINES: [usize; 2] = [8, 32];

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rows: Vec<SchedStudyRow> = Vec::new();

    for clusters in MACHINES {
        println!("calibrating {clusters}-cluster machine...");
        let mut offloader = Offloader::new(SocConfig::with_clusters(clusters))?;
        let table = calibrate(&mut offloader, &CalibrationGrid::default(), SEED)?;

        for load in LOADS {
            let mut workload = Workload::balanced(
                JOBS,
                SEED ^ (load * 1000.0) as u64 ^ clusters as u64,
                ArrivalPattern::Poisson {
                    mean_interarrival: 1.0,
                },
            );
            let gap = workload.interarrival_for_load(&table, clusters, load);
            workload.arrivals = ArrivalPattern::Poisson {
                mean_interarrival: gap,
            };
            let jobs = workload.generate(&table);

            for mut policy in all_policies() {
                // Fresh SoC per run so measured service times cannot
                // leak state across policies; the memo cache makes the
                // repeated measurements cheap within a run.
                let offloader = Offloader::new(SocConfig::with_clusters(clusters))?;
                let mut engine = Engine::new(
                    table.clone(),
                    clusters,
                    ServiceBackend::measured(offloader, SEED),
                );
                let report = engine.run(&jobs, policy.as_mut())?;
                let m = report.metrics;
                rows.push(SchedStudyRow {
                    clusters,
                    offered_load: load,
                    policy: report.policy,
                    jobs: m.jobs,
                    offloaded: m.offloaded,
                    host_runs: m.host_runs,
                    rejected: m.rejected,
                    deadline_misses: m.deadline_misses,
                    miss_rate: m.miss_rate,
                    cluster_utilization: m.cluster_utilization,
                    p95_latency: m.p95_latency,
                    throughput_per_mcycle: m.throughput_per_mcycle,
                });
            }
        }
    }

    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.clusters.to_string(),
                format!("{:.1}", r.offered_load),
                r.policy.clone(),
                r.offloaded.to_string(),
                r.host_runs.to_string(),
                r.rejected.to_string(),
                r.deadline_misses.to_string(),
                format!("{:.1}%", r.miss_rate * 100.0),
                format!("{:.1}%", r.cluster_utilization * 100.0),
                r.p95_latency.to_string(),
                format!("{:.2}", r.throughput_per_mcycle),
            ]
        })
        .collect();
    println!(
        "\n{}",
        render_table(
            &[
                "M",
                "load",
                "policy",
                "offl",
                "host",
                "rej",
                "miss",
                "miss%",
                "util%",
                "p95",
                "jobs/Mcyc",
            ],
            &table_rows,
        )
    );

    // The study's thesis: model-guided beats the FIFO baseline on miss
    // rate at equal machine utilization.
    let mut guided_wins = 0;
    for clusters in MACHINES {
        for load in LOADS {
            let cell = |name: &str| {
                rows.iter()
                    .find(|r| r.clusters == clusters && r.offered_load == load && r.policy == name)
                    .expect("cell")
            };
            let fifo = cell("fifo");
            let guided = cell("model_guided");
            if guided.miss_rate < fifo.miss_rate {
                guided_wins += 1;
                println!(
                    "M={clusters} load={load}: model_guided miss {:.1}% < fifo {:.1}% \
                     (util {:.1}% vs {:.1}%)",
                    guided.miss_rate * 100.0,
                    fifo.miss_rate * 100.0,
                    guided.cluster_utilization * 100.0,
                    fifo.cluster_utilization * 100.0,
                );
            }
        }
    }
    assert!(
        guided_wins > 0,
        "model-guided must strictly beat FIFO at some load point"
    );

    if let Some(path) = json_arg() {
        write_json(&path, &rows)?;
        println!("\nwrote {}", path.display());
    }
    Ok(())
}
