//! The **multi-tenant scheduling study**: offered load × policy ×
//! machine size, on service times measured against the simulated SoC.
//!
//! For each machine size, kernel models are calibrated from measured
//! offloads, one Poisson job stream per load point is generated, and
//! every policy replays the *same* stream — twice: once against the
//! `measured` backend (solo service times replayed from a cache, the
//! study's original contention-blind premise) and once against the
//! `cosim` backend (every tenant co-simulated on one shared SoC, so
//! service times stretch under host-queueing and NoC/HBM interference
//! and each job's `contention_cycles` attribution is real). The table
//! reports deadline-miss rate, utilization, p95 latency, rejection
//! rate and mean per-job contention; the model-guided packer should
//! beat FIFO first-fit on miss rate at equal utilization under the
//! measured backend, and the cosim rows show how much interference the
//! solo-run premise hides.
//!
//! ```text
//! cargo run --release -p mpsoc-bench --bin sched_study [-- --smoke] [-- --json out.json]
//! ```
//!
//! `--smoke` shrinks the sweep (one machine, two loads, fewer jobs) for
//! CI determinism gating; the statistical thesis assertions only run on
//! the full sweep, where the sample sizes make them meaningful.

use mpsoc_bench::{json_arg, render_table, write_json};
use mpsoc_offload::Offloader;
use mpsoc_sched::{
    all_policies, calibrate, ArrivalPattern, CalibrationGrid, Engine, ServiceBackend, Workload,
};
use mpsoc_soc::SocConfig;
use serde::{Deserialize, Serialize};

/// One `(machine, load, policy)` cell of the study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct SchedStudyRow {
    clusters: usize,
    offered_load: f64,
    backend: String,
    policy: String,
    jobs: usize,
    offloaded: usize,
    host_runs: usize,
    rejected: usize,
    deadline_misses: usize,
    miss_rate: f64,
    cluster_utilization: f64,
    p95_latency: u64,
    throughput_per_mcycle: f64,
    /// Mean `JobRecord::contention_cycles` over offloaded jobs —
    /// structurally zero under the measured backend, emergent under
    /// cosim.
    mean_contention_cycles: f64,
}

const SEED: u64 = 0x5EED_DA7E;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (jobs_per_cell, loads, machines): (usize, &[f64], &[usize]) = if smoke {
        (40, &[0.5, 2.5], &[8])
    } else {
        (150, &[0.5, 1.0, 1.5, 2.5], &[8, 32])
    };
    let mut rows: Vec<SchedStudyRow> = Vec::new();

    for &clusters in machines {
        println!("calibrating {clusters}-cluster machine...");
        let mut offloader = Offloader::new(SocConfig::with_clusters(clusters))?;
        let table = calibrate(&mut offloader, &CalibrationGrid::default(), SEED)?;

        for &load in loads {
            let mut workload = Workload::balanced(
                jobs_per_cell,
                SEED ^ (load * 1000.0) as u64 ^ clusters as u64,
                ArrivalPattern::Poisson {
                    mean_interarrival: 1.0,
                },
            );
            let gap = workload.interarrival_for_load(&table, clusters, load);
            workload.arrivals = ArrivalPattern::Poisson {
                mean_interarrival: gap,
            };
            let jobs = workload.generate(&table);

            for backend_name in ["measured", "cosim"] {
                for mut policy in all_policies() {
                    // Fresh SoC per run so service times cannot leak
                    // state across policies; under `measured` the memo
                    // cache makes repeated measurements cheap, under
                    // `cosim` every job is simulated in company anyway.
                    let offloader = Offloader::new(SocConfig::with_clusters(clusters))?;
                    let backend = match backend_name {
                        "measured" => ServiceBackend::measured(offloader, SEED),
                        _ => ServiceBackend::co_simulated(offloader, SEED),
                    };
                    let mut engine = Engine::new(table.clone(), clusters, backend);
                    let report = engine.run(&jobs, policy.as_mut())?;
                    let m = report.metrics;
                    let contention: u64 = report.records.iter().map(|r| r.contention_cycles).sum();
                    rows.push(SchedStudyRow {
                        clusters,
                        offered_load: load,
                        backend: backend_name.to_owned(),
                        policy: report.policy,
                        jobs: m.jobs,
                        offloaded: m.offloaded,
                        host_runs: m.host_runs,
                        rejected: m.rejected,
                        deadline_misses: m.deadline_misses,
                        miss_rate: m.miss_rate,
                        cluster_utilization: m.cluster_utilization,
                        p95_latency: m.p95_latency,
                        throughput_per_mcycle: m.throughput_per_mcycle,
                        mean_contention_cycles: contention as f64 / m.offloaded.max(1) as f64,
                    });
                }
            }
        }
    }

    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.clusters.to_string(),
                format!("{:.1}", r.offered_load),
                r.backend.clone(),
                r.policy.clone(),
                r.offloaded.to_string(),
                r.host_runs.to_string(),
                r.rejected.to_string(),
                r.deadline_misses.to_string(),
                format!("{:.1}%", r.miss_rate * 100.0),
                format!("{:.1}%", r.cluster_utilization * 100.0),
                r.p95_latency.to_string(),
                format!("{:.2}", r.throughput_per_mcycle),
                format!("{:.1}", r.mean_contention_cycles),
            ]
        })
        .collect();
    println!(
        "\n{}",
        render_table(
            &[
                "M",
                "load",
                "backend",
                "policy",
                "offl",
                "host",
                "rej",
                "miss",
                "miss%",
                "util%",
                "p95",
                "jobs/Mcyc",
                "cont/job",
            ],
            &table_rows,
        )
    );

    // The study's thesis: model-guided beats the FIFO baseline on miss
    // rate at equal machine utilization.
    let mut guided_wins = 0;
    for &clusters in machines {
        for &load in loads {
            let cell = |name: &str| {
                rows.iter()
                    .find(|r| {
                        r.clusters == clusters
                            && r.offered_load == load
                            && r.backend == "measured"
                            && r.policy == name
                    })
                    .expect("cell")
            };
            let fifo = cell("fifo");
            let guided = cell("model_guided");
            if guided.miss_rate < fifo.miss_rate {
                guided_wins += 1;
                println!(
                    "M={clusters} load={load}: model_guided miss {:.1}% < fifo {:.1}% \
                     (util {:.1}% vs {:.1}%)",
                    guided.miss_rate * 100.0,
                    fifo.miss_rate * 100.0,
                    guided.cluster_utilization * 100.0,
                    fifo.cluster_utilization * 100.0,
                );
            }
        }
    }
    // Statistical claims need the full sample: a 40-job smoke sweep can
    // legitimately tie, so the thesis gate is full-run only.
    if !smoke {
        assert!(
            guided_wins > 0,
            "model-guided must strictly beat FIFO at some load point"
        );
    }

    // The interference report the measured premise cannot make: the
    // measured backend is structurally contention-blind, while the
    // co-simulated rows attribute real shared-resource cycles.
    assert!(
        rows.iter()
            .filter(|r| r.backend == "measured")
            .all(|r| r.mean_contention_cycles == 0.0),
        "measured service times cannot observe contention"
    );
    let peak = rows
        .iter()
        .filter(|r| r.backend == "cosim")
        .max_by(|a, b| {
            a.mean_contention_cycles
                .total_cmp(&b.mean_contention_cycles)
        })
        .expect("cosim rows exist");
    println!(
        "peak interference: M={} load={} {} — {:.1} contention cycles/job \
         (invisible to the measured backend)",
        peak.clusters, peak.offered_load, peak.policy, peak.mean_contention_cycles
    );

    if let Some(path) = json_arg() {
        write_json(&path, &rows)?;
        println!("\nwrote {}", path.display());
    }
    Ok(())
}
