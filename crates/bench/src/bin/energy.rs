//! **Energy sweep**: first-order energy estimate of the 1024-element
//! DAXPY per strategy and cluster count. The paper motivates the
//! co-design by noting that offload overheads "add up to the runtime and
//! energy consumption"; here the removed overhead cycles translate into
//! removed idle/synchronization energy.
//!
//! ```text
//! cargo run --release -p mpsoc-bench --bin energy [-- --json out.json]
//! ```

use mpsoc_bench::{json_arg, render_table, write_json, Harness};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut harness = Harness::new()?;
    let rows = harness.energy_sweep()?;

    println!("Energy estimate — DAXPY N=1024 [nJ]\n");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.strategy.clone(),
                r.m.to_string(),
                r.cycles.to_string(),
                format!("{:.1}", r.total_pj / 1000.0),
                format!("{:.1}", r.idle_pj / 1000.0),
                format!("{:.1}", r.sync_pj / 1000.0),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["strategy", "M", "cycles", "total nJ", "idle nJ", "sync nJ"],
            &table
        )
    );

    // At every M, the extended runtime should cost no more energy than
    // the baseline (fewer total cycles -> less idle energy; no polling).
    let wins = rows
        .iter()
        .filter(|r| r.strategy.starts_with("multicast"))
        .all(|ext| {
            rows.iter()
                .find(|b| b.strategy.starts_with("sequential") && b.m == ext.m)
                .is_some_and(|b| ext.total_pj <= b.total_pj)
        });
    println!("extended never costs more energy: {wins}");

    if let Some(path) = json_arg() {
        write_json(&path, &rows)?;
        println!("\nwrote {}", path.display());
    }
    Ok(())
}
