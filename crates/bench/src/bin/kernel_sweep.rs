//! **Kernel sweep** (model generality, §IV): refits the Eq. 1-form
//! model for every kernel in the zoo and reports MAPE on a held-out
//! grid, verifying every offloaded result on the way.
//!
//! ```text
//! cargo run --release -p mpsoc-bench --bin kernel_sweep [-- --json out.json]
//! ```

use mpsoc_bench::{json_arg, render_table, write_json, Harness};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut harness = Harness::new()?;
    let rows = harness.kernel_sweep()?;

    println!("Kernel sweep — Eq. 1-form model per kernel\n");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.kernel.clone(),
                format!("{:.1}", r.fitted.c0),
                format!("{:.4}", r.fitted.c_mem),
                format!("{:.4}", r.fitted.c_comp),
                format!("{:.3}", r.mape_pct),
                format!("{:.2}", r.extended.c_host),
                format!("{:.3}", r.mape_extended_pct),
                if r.all_verified { "yes" } else { "NO" }.to_owned(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "kernel",
                "c0",
                "c_mem",
                "c_comp",
                "MAPE [%]",
                "+c_host·M",
                "MAPE+ [%]",
                "verified",
            ],
            &table
        )
    );

    println!(
        "Eq. 1 (3-term) captures every map kernel (MAPE < 1%): {}",
        rows.iter()
            .filter(|r| !matches!(r.kernel.as_str(), "dot" | "sum"))
            .all(|r| r.mape_pct < 1.0)
    );
    println!(
        "4-term extension captures every kernel incl. reductions (MAPE < 1%): {}",
        rows.iter().all(|r| r.mape_extended_pct < 1.0)
    );
    println!(
        "all results verified against golden references: {}",
        rows.iter().all(|r| r.all_verified)
    );

    if let Some(path) = json_arg() {
        write_json(&path, &rows)?;
        println!("\nwrote {}", path.display());
    }
    Ok(())
}
