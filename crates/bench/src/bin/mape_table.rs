//! Regenerates **Eq. 2**: the MAPE validation of the runtime model on
//! `N ∈ {256, 512, 768, 1024}` over `M ∈ {1,2,4,8,16,32}` (paper:
//! consistently below 1%).
//!
//! The model is fitted on *disjoint* problem sizes first, so this is a
//! genuine out-of-sample validation.
//!
//! ```text
//! cargo run --release -p mpsoc-bench --bin mape_table [-- --json out.json]
//! ```

use mpsoc_bench::{json_arg, render_table, write_json, Harness};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut harness = Harness::new()?;
    let (model, rows) = harness.mape_table()?;

    println!("Eq. 2 — model validation (fitted model: {model})\n");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.n.to_string(),
                format!("{:.3}", r.mape_pct),
                r.points.to_string(),
            ]
        })
        .collect();
    println!("{}", render_table(&["N", "MAPE [%]", "points"], &table));

    let all_below_one = rows.iter().all(|r| r.mape_pct < 1.0);
    println!("MAPE consistently below 1%: {all_below_one} (paper: true)");

    if let Some(path) = json_arg() {
        write_json(&path, &rows)?;
        println!("\nwrote {}", path.display());
    }
    Ok(())
}
