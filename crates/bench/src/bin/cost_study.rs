//! Differential validation of the static cycle-bound analyzer
//! (`mpsoc_lint::cost`): the full kernel zoo × sizes × strategies ×
//! cluster counts, every cell run through **both** the analyzer and the
//! cycle-accurate simulator.
//!
//! ```text
//! cargo run --release -p mpsoc-bench --bin cost_study -- \
//!     [--smoke] [--json out.json] [--replay recorded.json]
//! ```
//!
//! The binary asserts its own headline claim — **soundness**: in every
//! cell the simulator-measured total and all five phase milestones lie
//! within the static `[best, worst]` bounds; the host path's measured
//! cycles lie within `bound_host_run`; and a co-simulated two-tenant
//! witness stays under the contention-widened worst bound (the
//! [`ContentionEnvelope`] of its co-resident). It also reports
//! **tightness** (`worst / actual`) per cell so over-approximation is
//! visible, not just bounded. Exits non-zero on any violation.
//!
//! `--replay <path>` is the trace-replay sanitizer: it re-reads a
//! previously written report, reconstructs each cell's kernel and
//! strategy, recomputes the bounds with the *current* analyzer, and
//! re-checks the recorded [`PhaseBreakdown`] durations against them —
//! so a future interpreter or hardware-model change that silently
//! breaks soundness fails CI against the recorded traces.
//!
//! Without `--json`, the deterministic report goes to
//! `results/cost_study.json`; wall-clock numbers go to the
//! never-byte-compared `BENCH_cost.json` sidecar.
//!
//! [`ContentionEnvelope`]: mpsoc_lint::ContentionEnvelope
//! [`PhaseBreakdown`]: mpsoc_telemetry::PhaseBreakdown

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use mpsoc_bench::{json_arg, render_table, write_bench_sidecar, write_json};
use mpsoc_kernels::{
    Axpby, Daxpy, DaxpySsr, Dot, Gemv, Kernel, Memset, Scale, Stencil3, Sum, VecAdd,
};
use mpsoc_lint::{bound_host_run, bound_offload, ContentionEnvelope, OffloadBounds};
use mpsoc_offload::{
    ClusterMask, DispatchStrategy, OffloadStrategy, Offloader, RuntimeCosts, SessionStep,
    SyncStrategy,
};
use mpsoc_sim::Cycle;
use mpsoc_soc::SocConfig;
use serde::{Deserialize, Serialize};

/// One `(kernel, N, M, strategy)` soundness cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct CostRow {
    kernel: String,
    n: u64,
    m: usize,
    dispatch: String,
    sync: String,
    /// Static best-case total (cycles).
    best: u64,
    /// Static worst-case total (cycles).
    worst: u64,
    /// Simulator-measured total (cycles).
    actual: u64,
    /// `worst / actual` — 1.0 would be a perfectly tight bound.
    tightness: f64,
    /// Recorded phase durations (dispatch, dma_in, compute, dma_out,
    /// sync) — the replay sanitizer's input. Always five entries; a
    /// `Vec` because the vendored serde cannot derive array
    /// deserialization.
    phases: Vec<u64>,
}

/// One host-path soundness cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct HostRow {
    kernel: String,
    n: u64,
    best: u64,
    worst: u64,
    actual: u64,
    tightness: f64,
}

/// The co-simulated contention witness: two credit-sync tenants on
/// disjoint partitions of one SoC, each bounded with the *other's*
/// [`ContentionEnvelope`] folded into its worst case.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct CosimRow {
    kernel: String,
    n: u64,
    m: usize,
    /// Solo (uncontended) worst bound — what the witness would be held
    /// to if contention were ignored.
    solo_worst: u64,
    /// Contention-widened worst bound actually asserted.
    contended_worst: u64,
    /// Measured total in company (cycles, from submission).
    actual: u64,
}

/// The deterministic JSON artifact.
#[derive(Debug, Serialize, Deserialize)]
struct CostReport {
    smoke: bool,
    clusters: usize,
    rows: Vec<CostRow>,
    host_rows: Vec<HostRow>,
    cosim: Vec<CosimRow>,
    /// Mean `worst/actual` over all offload cells.
    mean_tightness: f64,
    /// Worst (largest) `worst/actual` over all offload cells.
    max_tightness: f64,
    violations: usize,
}

fn zoo() -> Vec<Box<dyn Kernel>> {
    vec![
        Box::new(Daxpy::new(2.0)),
        Box::new(DaxpySsr::new(2.0)),
        Box::new(Axpby::new(1.5, -0.5)),
        Box::new(Scale::new(3.0)),
        Box::new(VecAdd::new()),
        Box::new(Memset::new(7.0)),
        Box::new(Dot::new()),
        Box::new(Sum::new()),
        Box::new(Gemv::new(vec![1.0, 2.0, 3.0])),
        Box::new(Stencil3::new(0.25, 0.5, 0.25)),
    ]
}

fn kernel_by_name(name: &str) -> Option<Box<dyn Kernel>> {
    zoo().into_iter().find(|k| k.name() == name)
}

fn strategy_from_names(dispatch: &str, sync: &str) -> Option<OffloadStrategy> {
    let dispatch = match dispatch {
        "multicast" => DispatchStrategy::Multicast,
        "sequential" => DispatchStrategy::Sequential,
        _ => return None,
    };
    let sync = match sync {
        "software-barrier" => SyncStrategy::SoftwareBarrier,
        "credit-counter" => SyncStrategy::CreditCounter,
        _ => return None,
    };
    Some(OffloadStrategy { dispatch, sync })
}

fn operands(kernel: &dyn Kernel, n: u64) -> (Vec<f64>, Vec<f64>) {
    // Timing on this SoC is data-independent; fixed patterns keep the
    // artifact a pure function of the grid.
    let xs = vec![1.0; (n * kernel.x_words_per_elem()) as usize];
    let ys = vec![0.5; n as usize];
    (xs, ys)
}

fn replay_arg() -> Option<PathBuf> {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--replay" {
            return args.next().map(Into::into);
        }
    }
    None
}

/// Re-checks a recorded report against the *current* analyzer: the
/// trace-replay sanitizer. Returns the number of violations.
fn replay(path: &PathBuf) -> Result<usize, Box<dyn std::error::Error>> {
    let text = std::fs::read_to_string(path)?;
    let report: CostReport = serde_json::from_str(&text)?;
    let config = SocConfig::manticore();
    let costs = RuntimeCosts::default();
    let solo = ContentionEnvelope::default();
    let mut violations = 0usize;
    for row in &report.rows {
        let Some(kernel) = kernel_by_name(&row.kernel) else {
            println!("replay: unknown kernel {:?}", row.kernel);
            violations += 1;
            continue;
        };
        let Some(strategy) = strategy_from_names(&row.dispatch, &row.sync) else {
            println!("replay: unknown strategy {}+{}", row.dispatch, row.sync);
            violations += 1;
            continue;
        };
        let bounds: OffloadBounds = match bound_offload(
            kernel.as_ref(),
            row.n,
            row.m,
            strategy,
            &config,
            &costs,
            &solo,
        ) {
            Ok(b) => b,
            Err(e) => {
                println!(
                    "replay: {} N={} M={} became unboundable: {}",
                    row.kernel, row.n, row.m, e
                );
                violations += 1;
                continue;
            }
        };
        if !bounds.total.contains(row.actual) {
            println!(
                "replay: {} N={} M={} {}+{}: recorded total {} outside [{}, {}]",
                row.kernel,
                row.n,
                row.m,
                row.dispatch,
                row.sync,
                row.actual,
                bounds.total.best,
                bounds.total.worst
            );
            violations += 1;
        }
        let Ok(phases) = <[u64; 5]>::try_from(row.phases.clone()) else {
            println!(
                "replay: {} N={} M={}: malformed phase record {:?}",
                row.kernel, row.n, row.m, row.phases
            );
            violations += 1;
            continue;
        };
        if let Err(e) = bounds.check_phases(phases) {
            println!(
                "replay: {} N={} M={} {}+{}: {}",
                row.kernel, row.n, row.m, row.dispatch, row.sync, e
            );
            violations += 1;
        }
    }
    for row in &report.host_rows {
        let Some(kernel) = kernel_by_name(&row.kernel) else {
            println!("replay: unknown kernel {:?}", row.kernel);
            violations += 1;
            continue;
        };
        match bound_host_run(kernel.as_ref(), row.n) {
            Ok(cost) if cost.cycles.contains(row.actual) => {}
            Ok(cost) => {
                println!(
                    "replay: host {} N={}: recorded {} outside [{}, {}]",
                    row.kernel, row.n, row.actual, cost.cycles.best, cost.cycles.worst
                );
                violations += 1;
            }
            Err(e) => {
                println!("replay: host {} N={} unboundable: {}", row.kernel, row.n, e);
                violations += 1;
            }
        }
    }
    println!(
        "replay: {} offload + {} host cells re-checked, {} violation(s)",
        report.rows.len(),
        report.host_rows.len(),
        violations
    );
    Ok(violations)
}

#[allow(clippy::too_many_lines)]
fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("cost_study failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<ExitCode, Box<dyn std::error::Error>> {
    if let Some(path) = replay_arg() {
        let violations = replay(&path)?;
        return Ok(if violations == 0 {
            println!("ok");
            ExitCode::SUCCESS
        } else {
            println!("FAILED");
            ExitCode::FAILURE
        });
    }

    let smoke = std::env::args().any(|a| a == "--smoke");
    let started = Instant::now();
    let (sizes, machines): (&[u64], &[usize]) = if smoke {
        (&[1, 64, 250], &[1, 4])
    } else {
        (&[1, 7, 64, 250, 1024, 4096], &[1, 2, 4, 8])
    };

    let config = SocConfig::manticore();
    let costs = RuntimeCosts::default();
    let solo = ContentionEnvelope::default();
    let mut rows: Vec<CostRow> = Vec::new();
    let mut host_rows: Vec<HostRow> = Vec::new();
    let mut violations = 0usize;

    for kernel in zoo() {
        for &n in sizes {
            let (xs, ys) = operands(kernel.as_ref(), n);
            for &m in machines {
                for strategy in OffloadStrategy::all() {
                    let bounds = match bound_offload(
                        kernel.as_ref(),
                        n,
                        m,
                        strategy,
                        &config,
                        &costs,
                        &solo,
                    ) {
                        Ok(b) => b,
                        Err(e) => {
                            println!("{} N={n} M={m}: unboundable: {e}", kernel.name());
                            violations += 1;
                            continue;
                        }
                    };
                    let mut off = Offloader::new(config.clone())?;
                    let run = off.offload(kernel.as_ref(), &xs, &ys, m, strategy)?;
                    let actual = run.outcome.total.as_u64();
                    let ph = &run.outcome.phases;
                    let milestones = [
                        ("dispatch", ph.last_dispatch.as_u64(), bounds.dispatch),
                        ("dma_in", ph.last_dma_in.as_u64(), bounds.dma_in),
                        ("compute", ph.last_compute.as_u64(), bounds.compute),
                        ("dma_out", ph.last_dma_out.as_u64(), bounds.dout),
                        ("sync", ph.sync_done.as_u64(), bounds.sync),
                        ("total", actual, bounds.total),
                    ];
                    for (name, milestone, b) in milestones {
                        if !b.contains(milestone) {
                            println!(
                                "{} N={n} M={m} {strategy}: {name} {milestone} outside [{}, {}]",
                                kernel.name(),
                                b.best,
                                b.worst
                            );
                            violations += 1;
                        }
                    }
                    let bd = &run.outcome.phase_breakdown;
                    let phases = [bd.dispatch, bd.dma_in, bd.compute, bd.dma_out, bd.sync];
                    if let Err(e) = bounds.check_phases(phases) {
                        println!(
                            "{} N={n} M={m} {strategy}: replay check: {e}",
                            kernel.name()
                        );
                        violations += 1;
                    }
                    rows.push(CostRow {
                        kernel: kernel.name().to_owned(),
                        n,
                        m,
                        dispatch: strategy.dispatch.to_string(),
                        sync: strategy.sync.to_string(),
                        best: bounds.total.best,
                        worst: bounds.total.worst,
                        actual,
                        tightness: bounds.total.tightness(actual),
                        phases: phases.to_vec(),
                    });
                }
            }

            // Host path: the same program bounds against the measured
            // CVA6-class scalar run.
            match bound_host_run(kernel.as_ref(), n) {
                Ok(cost) => {
                    let mut off = Offloader::new(config.clone())?;
                    let (actual, _) = off.run_on_host(kernel.as_ref(), &xs, &ys)?;
                    if !cost.cycles.contains(actual) {
                        println!(
                            "host {} N={n}: {actual} outside [{}, {}]",
                            kernel.name(),
                            cost.cycles.best,
                            cost.cycles.worst
                        );
                        violations += 1;
                    }
                    host_rows.push(HostRow {
                        kernel: kernel.name().to_owned(),
                        n,
                        best: cost.cycles.best,
                        worst: cost.cycles.worst,
                        actual,
                        tightness: cost.cycles.tightness(actual),
                    });
                }
                Err(e) => {
                    println!("host {} N={n}: unboundable: {e}", kernel.name());
                    violations += 1;
                }
            }
        }
    }

    // Co-simulated contention witness: two identical credit-sync
    // tenants on disjoint partitions of one SoC. Each tenant's worst
    // bound is widened by its co-resident's ContentionEnvelope; the
    // measured in-company totals must stay inside it (this is the cell
    // that would catch an unsound envelope).
    let mut cosim: Vec<CosimRow> = Vec::new();
    {
        let kernel = Daxpy::new(2.0);
        let n = 512u64;
        let m = 2usize;
        let strategy = OffloadStrategy::extended();
        let solo_bounds = bound_offload(&kernel, n, m, strategy, &config, &costs, &solo)?;
        let neighbor = ContentionEnvelope::for_job(&kernel, n, m, strategy, &config, &costs);
        let contended = bound_offload(&kernel, n, m, strategy, &config, &costs, &neighbor)?;
        let (xs, ys) = operands(&kernel, n);
        let mut off = Offloader::new(config.clone())?;
        off.begin_jobs();
        off.submit_at(
            &kernel,
            &xs,
            &ys,
            ClusterMask::range(0, m),
            strategy,
            Cycle::ZERO,
        )?;
        off.submit_at(
            &kernel,
            &xs,
            &ys,
            ClusterMask::range(m, m),
            strategy,
            Cycle::ZERO,
        )?;
        loop {
            match off.advance_jobs(Cycle::MAX)? {
                SessionStep::Completed(tenant) => {
                    let actual = tenant.run.outcome.total.as_u64();
                    if !contended.total.contains(actual) {
                        println!(
                            "cosim {} N={n} M={m}: total {actual} outside contended [{}, {}]",
                            kernel.name(),
                            contended.total.best,
                            contended.total.worst
                        );
                        violations += 1;
                    }
                    let bd = &tenant.run.outcome.phase_breakdown;
                    if let Err(e) = contended.check_phases([
                        bd.dispatch,
                        bd.dma_in,
                        bd.compute,
                        bd.dma_out,
                        bd.sync,
                    ]) {
                        println!("cosim {} N={n} M={m}: {e}", kernel.name());
                        violations += 1;
                    }
                    cosim.push(CosimRow {
                        kernel: kernel.name().to_owned(),
                        n,
                        m,
                        solo_worst: solo_bounds.total.worst,
                        contended_worst: contended.total.worst,
                        actual,
                    });
                }
                SessionStep::Horizon => {}
                SessionStep::Idle => break,
            }
        }
        if cosim.len() != 2 {
            println!("cosim witness: expected 2 tenants, saw {}", cosim.len());
            violations += 1;
        }
    }

    let mean_tightness = rows.iter().map(|r| r.tightness).sum::<f64>() / rows.len().max(1) as f64;
    let max_tightness = rows.iter().map(|r| r.tightness).fold(0.0f64, f64::max);

    println!("cost_study — static bounds vs the cycle-accurate simulator\n");
    let mut table: Vec<Vec<String>> = Vec::new();
    for kernel in zoo() {
        let of_kernel: Vec<&CostRow> = rows.iter().filter(|r| r.kernel == kernel.name()).collect();
        if of_kernel.is_empty() {
            continue;
        }
        let mean = of_kernel.iter().map(|r| r.tightness).sum::<f64>() / of_kernel.len() as f64;
        let max = of_kernel.iter().map(|r| r.tightness).fold(0.0f64, f64::max);
        table.push(vec![
            kernel.name().to_owned(),
            of_kernel.len().to_string(),
            format!("{mean:.3}"),
            format!("{max:.3}"),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["kernel", "cells", "mean worst/actual", "max worst/actual"],
            &table
        )
    );
    println!(
        "{} offload cells, {} host cells, {} cosim tenants: mean tightness {mean_tightness:.3}, max {max_tightness:.3}, {violations} violation(s)",
        rows.len(),
        host_rows.len(),
        cosim.len()
    );

    let report = CostReport {
        smoke,
        clusters: config.clusters,
        rows,
        host_rows,
        cosim,
        mean_tightness,
        max_tightness,
        violations,
    };
    let path = json_arg().unwrap_or_else(|| PathBuf::from("results/cost_study.json"));
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    write_json(&path, &report)?;
    println!("wrote {}", path.display());

    let cells = (report.rows.len() + report.host_rows.len() + report.cosim.len()) as u64;
    let bench = write_bench_sidecar(
        "cost",
        started.elapsed().as_secs_f64(),
        cells,
        report.mean_tightness,
    )?;
    println!("wrote {}", bench.display());

    Ok(if report.violations == 0 {
        println!("ok");
        ExitCode::SUCCESS
    } else {
        println!("FAILED");
        ExitCode::FAILURE
    })
}
