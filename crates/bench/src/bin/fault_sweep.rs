//! Fault-injection robustness study: the self-healing offload path
//! (watchdog + bounded re-dispatch + cluster quarantine) exercised
//! against every fault site of the simulated MPSoC:
//!
//! ```text
//! cargo run --release -p mpsoc-bench --bin fault_sweep -- \
//!     [--smoke] [--json out.json]
//! ```
//!
//! Four sections, each self-asserting (the binary exits non-zero when a
//! robustness claim fails, so CI can gate on it):
//!
//! 1. **Single-transient matrix** — exactly one fault per kind, forced
//!    at the first occurrence of its site. Claim: the watchdog +
//!    re-dispatch protocol recovers **100%** of single transient faults
//!    on the accelerator (no host fallback needed), with a
//!    verified-correct result.
//! 2. **Stochastic rate sweep** — fault-rate × kind × recovery-strategy
//!    grid. Claim: *every* job ends in a verified-correct completion or
//!    a typed, attributed failure — never silent data corruption, never
//!    a hang, never a panic. With host fallback enabled, completion is
//!    100%.
//! 3. **Quarantine degradation curve** — k = 0..6 permanently dead
//!    clusters on an 8-cluster machine. Claim: strike-based quarantine
//!    converges (exactly the dead clusters end up quarantined) and
//!    throughput degrades smoothly with k — no cliff, no collapse.
//! 4. **No-op byte-stability** — a zero-fault plan leaves the offload
//!    artifact byte-identical to running with no plan installed.
//!
//! Deterministic: two seed-equal runs serialize byte-identically (CI
//! runs `--smoke` twice and compares).

use mpsoc_bench::{json_arg, render_table, write_json};
use mpsoc_kernels::{Daxpy, Kernel};
use mpsoc_offload::{
    AttemptOutcome, OffloadStrategy, Offloader, RecoveredResult, RecoveryPolicy, ResilientReport,
};
use mpsoc_sim::rng::SplitMix64;
use mpsoc_soc::{FaultKind, FaultPlan, SiteSpec, SocConfig};
use serde::Serialize;

/// Operand seed; runs are deterministic in it.
const SEED: u64 = 0xFA_0175;
/// Extra cycles a stalled DMA burst takes, wherever the stall site is
/// armed.
const STALL_CYCLES: u64 = 400;

/// One single-transient-fault recovery experiment.
#[derive(Debug, Clone, Serialize)]
struct TransientRow {
    /// Fault site (one forced occurrence).
    kind: String,
    /// Offload strategy chosen so the site is actually exercised.
    strategy: String,
    /// Faults the injector actually placed (ground truth).
    faults_injected: u64,
    /// Dispatch attempts the resilient path needed.
    attempts: usize,
    /// How the first attempt ended.
    first_outcome: String,
    /// Whether recovery machinery ran (retry or fallback).
    recovered: bool,
    /// The result verified against the golden reference.
    verified: bool,
    /// End-to-end accounted cycles (attempts + backoff).
    total_cycles: u64,
}

/// One `(kind, rate, strategy)` cell of the stochastic sweep.
#[derive(Debug, Clone, Serialize)]
struct RateRow {
    kind: String,
    rate: f64,
    /// Recovery strategy name (`fallback` = host fallback enabled,
    /// `strict` = typed error once retries are exhausted).
    recovery: String,
    jobs: usize,
    /// Jobs that completed on the accelerator, verified.
    offloaded: usize,
    /// Jobs that completed via host fallback, verified.
    host_fallback: usize,
    /// Jobs that ended in a typed error (strict strategy only).
    typed_failures: usize,
    /// Total dispatch attempts across all jobs.
    attempts: usize,
    /// Ground-truth injected faults across all jobs.
    faults_injected: u64,
    /// Clusters quarantined by the end of the cell.
    quarantined: usize,
}

/// One point of the dead-cluster degradation curve.
#[derive(Debug, Clone, Serialize)]
struct QuarantineRow {
    dead_clusters: usize,
    jobs: usize,
    /// Clusters quarantined once the stream drained (must equal
    /// `dead_clusters`).
    quarantined: usize,
    /// Dispatch attempts the first (diagnosing) job needed.
    first_job_attempts: usize,
    /// Cycles the first job spent diagnosing and quarantining the dead
    /// clusters (watchdog budgets + backoff + the final clean run).
    diagnosis_cycles: u64,
    /// Accounted cycles for the post-quarantine jobs.
    steady_cycles: u64,
    /// Post-quarantine jobs per million accounted cycles.
    throughput_per_mcycle: f64,
}

/// The JSON artifact.
#[derive(Debug, Serialize)]
struct FaultSweepReport {
    seed: u64,
    smoke: bool,
    transient: Vec<TransientRow>,
    rates: Vec<RateRow>,
    quarantine: Vec<QuarantineRow>,
    noop_byte_stable: bool,
}

fn operands(n: usize) -> (Vec<f64>, Vec<f64>) {
    let mut rng = SplitMix64::new(SEED ^ n as u64);
    let mut x = vec![0.0; n];
    let mut y = vec![0.0; n];
    rng.fill_f64(&mut x, -8.0, 8.0);
    rng.fill_f64(&mut y, -8.0, 8.0);
    (x, y)
}

/// The strategy under which `kind`'s site is actually on the offload
/// path: the AMO site only exists under the software polling barrier;
/// the credit site only under the credit counter. Everything else is
/// exercised by the extended (multicast + credit) path.
fn strategy_for(kind: FaultKind) -> (OffloadStrategy, &'static str) {
    match kind {
        FaultKind::AmoDrop => (OffloadStrategy::baseline(), "baseline"),
        _ => (OffloadStrategy::extended(), "extended"),
    }
}

/// A fault plan arming exactly one site.
fn plan_for(kind: FaultKind, spec: SiteSpec, seed: u64) -> FaultPlan {
    let mut plan = FaultPlan::with_seed(seed);
    *match kind {
        FaultKind::DispatchDrop => &mut plan.dispatch_drop,
        FaultKind::DispatchDup => &mut plan.dispatch_dup,
        FaultKind::WakeLoss => &mut plan.wake_loss,
        FaultKind::CreditLoss => &mut plan.credit_loss,
        FaultKind::DmaCorrupt => &mut plan.dma_corrupt,
        FaultKind::DmaStall => &mut plan.dma_stall,
        FaultKind::AmoDrop => &mut plan.amo_drop,
        other => panic!("{other} is not a stochastic site"),
    } = spec;
    plan.dma_stall_cycles = STALL_CYCLES;
    plan
}

fn outcome_name(outcome: AttemptOutcome) -> &'static str {
    match outcome {
        AttemptOutcome::Success => "success",
        AttemptOutcome::CorruptData => "corrupt_data",
        AttemptOutcome::WatchdogTimeout => "watchdog_timeout",
        AttemptOutcome::LostCompletion => "lost_completion",
    }
}

/// Section 1: one forced transient fault per site; the resilient path
/// must deliver a verified accelerator result every time.
fn transient_matrix(n: usize, m: usize) -> Vec<TransientRow> {
    let kernel = Daxpy::new(2.0);
    let (x, y) = operands(n);
    let policy = RecoveryPolicy::default();
    let mut rows = Vec::new();
    for (i, &kind) in FaultKind::SITES.iter().enumerate() {
        let (strategy, strategy_name) = strategy_for(kind);
        let mut off = Offloader::new(SocConfig::with_clusters(m)).expect("soc");
        off.install_faults(plan_for(kind, SiteSpec::once_at(0), SEED ^ i as u64));
        let report = off
            .offload_resilient(&kernel, &x, &y, m, strategy, &policy)
            .unwrap_or_else(|e| panic!("single transient {kind} must recover, got: {e}"));
        let verified = report.result.verify(&kernel, &x, &y).passed();
        let faults = off.soc().fault_stats().total();
        assert!(verified, "{kind}: recovered result must verify");
        assert!(
            faults >= 1,
            "{kind}: the forced fault must actually be exercised under {strategy_name}"
        );
        assert!(
            matches!(report.result, RecoveredResult::Offloaded(_)),
            "{kind}: a single transient fault must recover on the accelerator, \
             not via host fallback"
        );
        rows.push(TransientRow {
            kind: kind.name().to_owned(),
            strategy: strategy_name.to_owned(),
            faults_injected: faults,
            attempts: report.attempts.len(),
            first_outcome: outcome_name(report.attempts[0].outcome).to_owned(),
            recovered: report.recovered(),
            verified,
            total_cycles: report.total_cycles,
        });
    }
    rows
}

/// One verified resilient job; panics on any wrong result.
fn run_one(
    off: &mut Offloader,
    kernel: &dyn Kernel,
    x: &[f64],
    y: &[f64],
    m: usize,
    strategy: OffloadStrategy,
    policy: &RecoveryPolicy,
) -> Result<ResilientReport, String> {
    match off.offload_resilient(kernel, x, y, m, strategy, policy) {
        Ok(report) => {
            assert!(
                report.result.verify(kernel, x, y).passed(),
                "a completed resilient offload returned wrong data"
            );
            Ok(report)
        }
        Err(e) => Err(e.to_string()),
    }
}

/// Section 2: fault-rate × kind × recovery-strategy sweep.
fn rate_sweep(rates: &[f64], jobs: usize, n: usize, m: usize) -> Vec<RateRow> {
    let kernel = Daxpy::new(2.0);
    let (x, y) = operands(n);
    let strategies: [(&str, RecoveryPolicy); 2] = [
        ("fallback", RecoveryPolicy::default()),
        (
            "strict",
            RecoveryPolicy {
                host_fallback: false,
                ..RecoveryPolicy::default()
            },
        ),
    ];
    let mut rows = Vec::new();
    for (i, &kind) in FaultKind::SITES.iter().enumerate() {
        let (strategy, _) = strategy_for(kind);
        for &rate in rates {
            for (recovery_name, policy) in &strategies {
                let mut off = Offloader::new(SocConfig::with_clusters(m)).expect("soc");
                if rate > 0.0 {
                    off.install_faults(plan_for(
                        kind,
                        SiteSpec::rate(rate),
                        SEED ^ ((i as u64) << 8),
                    ));
                }
                let mut row = RateRow {
                    kind: kind.name().to_owned(),
                    rate,
                    recovery: (*recovery_name).to_owned(),
                    jobs,
                    offloaded: 0,
                    host_fallback: 0,
                    typed_failures: 0,
                    attempts: 0,
                    faults_injected: 0,
                    quarantined: 0,
                };
                for _ in 0..jobs {
                    match run_one(&mut off, &kernel, &x, &y, m, strategy, policy) {
                        Ok(report) => {
                            row.attempts += report.attempts.len();
                            match report.result {
                                RecoveredResult::Offloaded(_) => row.offloaded += 1,
                                RecoveredResult::Host { .. } => row.host_fallback += 1,
                            }
                        }
                        Err(_) => row.typed_failures += 1,
                    }
                }
                row.faults_injected = off.soc().fault_stats().total();
                row.quarantined = off.quarantined().count();
                assert_eq!(
                    row.offloaded + row.host_fallback + row.typed_failures,
                    jobs,
                    "every job must end verified-correct or as a typed failure"
                );
                if *recovery_name == "fallback" {
                    assert_eq!(
                        row.typed_failures, 0,
                        "{kind} @ {rate}: with host fallback every job completes"
                    );
                }
                if rate == 0.0 {
                    assert_eq!(row.faults_injected, 0);
                    assert_eq!(row.offloaded, jobs, "fault-free cells never retry");
                    assert_eq!(row.attempts, jobs);
                }
                rows.push(row);
            }
        }
    }
    rows
}

/// Section 3: k dead clusters on an `clusters`-cluster machine — the
/// first job diagnoses and quarantines them, the rest of the stream
/// runs degraded on the survivors.
fn quarantine_curve(max_dead: usize, clusters: usize, jobs: usize, n: usize) -> Vec<QuarantineRow> {
    let kernel = Daxpy::new(2.0);
    let (x, y) = operands(n);
    let policy = RecoveryPolicy {
        max_retries: 4,
        ..RecoveryPolicy::default()
    };
    let mut rows: Vec<QuarantineRow> = Vec::new();
    for dead in 0..=max_dead {
        let mut off = Offloader::new(SocConfig::with_clusters(clusters)).expect("soc");
        if dead > 0 {
            let mut plan = FaultPlan::with_seed(SEED ^ dead as u64);
            // Kill the *top* clusters so the surviving prefix keeps the
            // re-planned masks contiguous from cluster 0.
            plan.dead_clusters = ((1u64 << dead) - 1) << (clusters - dead);
            off.install_faults(plan);
        }
        let mut diagnosis_cycles = 0u64;
        let mut steady_cycles = 0u64;
        let mut first_job_attempts = 0usize;
        for job in 0..jobs {
            let report = run_one(
                &mut off,
                &kernel,
                &x,
                &y,
                clusters,
                OffloadStrategy::extended(),
                &policy,
            )
            .unwrap_or_else(|e| panic!("{dead} dead: job {job} must still complete: {e}"));
            assert!(
                matches!(report.result, RecoveredResult::Offloaded(_)),
                "{dead} dead of {clusters}: survivors must carry the job"
            );
            if job == 0 {
                first_job_attempts = report.attempts.len();
                diagnosis_cycles = report.total_cycles;
            } else {
                assert_eq!(
                    report.attempts.len(),
                    1,
                    "{dead} dead: after quarantine the stream runs clean"
                );
                steady_cycles += report.total_cycles;
            }
        }
        let quarantined = off.quarantined().count();
        assert_eq!(
            quarantined, dead,
            "strike attribution must quarantine exactly the dead clusters"
        );
        // Steady state: the post-quarantine jobs, with the one-off
        // diagnosis transient accounted separately.
        let throughput = (jobs - 1) as f64 / (steady_cycles as f64 / 1e6);
        if let Some(prev) = rows.last() {
            assert!(
                throughput <= prev.throughput_per_mcycle * 1.01,
                "{dead} dead: losing a cluster cannot raise steady throughput \
                 ({throughput:.1} vs {:.1})",
                prev.throughput_per_mcycle
            );
            assert!(
                throughput >= prev.throughput_per_mcycle * 0.50,
                "{dead} dead: degradation must be smooth, got a cliff \
                 ({throughput:.1} vs {:.1})",
                prev.throughput_per_mcycle
            );
        }
        rows.push(QuarantineRow {
            dead_clusters: dead,
            jobs,
            quarantined,
            first_job_attempts,
            diagnosis_cycles,
            steady_cycles,
            throughput_per_mcycle: throughput,
        });
    }
    rows
}

/// Section 4: a zero-fault plan must not perturb the artifact bytes.
fn noop_byte_stability(n: usize, m: usize) -> bool {
    let kernel = Daxpy::new(2.0);
    let (x, y) = operands(n);
    let run = |plan: Option<FaultPlan>| {
        let mut off = Offloader::new(SocConfig::with_clusters(m)).expect("soc");
        if let Some(plan) = plan {
            off.install_faults(plan);
        }
        let run = off
            .offload(&kernel, &x, &y, m, OffloadStrategy::extended())
            .expect("offload");
        serde_json::to_string(&run).expect("serialize")
    };
    let clean = run(None);
    let planned = run(Some(FaultPlan::with_seed(SEED)));
    assert_eq!(
        clean, planned,
        "a zero-fault plan must leave the offload byte-identical"
    );
    true
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let smoke = std::env::args().any(|a| a == "--smoke");

    let (n, m) = if smoke { (256, 4) } else { (1024, 8) };
    let rates: &[f64] = if smoke {
        &[0.0, 0.02]
    } else {
        &[0.0, 0.005, 0.02, 0.08]
    };
    let jobs = if smoke { 3 } else { 6 };

    println!("Fault sweep — self-healing offload under injected faults\n");

    let transient = transient_matrix(n, m);
    println!("single transient fault per site (forced at first occurrence):\n");
    let table: Vec<Vec<String>> = transient
        .iter()
        .map(|r| {
            vec![
                r.kind.clone(),
                r.strategy.clone(),
                r.faults_injected.to_string(),
                r.attempts.to_string(),
                r.first_outcome.clone(),
                if r.verified {
                    "yes".into()
                } else {
                    "NO".into()
                },
                r.total_cycles.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "site",
                "strategy",
                "faults",
                "attempts",
                "first outcome",
                "verified",
                "cycles"
            ],
            &table,
        )
    );
    println!("=> 100% of single transient faults recovered on the accelerator\n");

    let rate_rows = rate_sweep(rates, jobs, n, m);
    let table: Vec<Vec<String>> = rate_rows
        .iter()
        .map(|r| {
            vec![
                r.kind.clone(),
                format!("{:.3}", r.rate),
                r.recovery.clone(),
                format!("{}/{}", r.offloaded, r.jobs),
                r.host_fallback.to_string(),
                r.typed_failures.to_string(),
                r.attempts.to_string(),
                r.faults_injected.to_string(),
                r.quarantined.to_string(),
            ]
        })
        .collect();
    println!("stochastic rate sweep ({jobs} jobs per cell):\n");
    println!(
        "{}",
        render_table(
            &["site", "rate", "recovery", "offl", "host", "fail", "attempts", "faults", "quar"],
            &table,
        )
    );
    println!("=> every job verified-correct or a typed failure; 100% completion with fallback\n");

    let quarantine = quarantine_curve(6, 8, jobs, n);
    let table: Vec<Vec<String>> = quarantine
        .iter()
        .map(|r| {
            vec![
                r.dead_clusters.to_string(),
                r.quarantined.to_string(),
                r.first_job_attempts.to_string(),
                r.diagnosis_cycles.to_string(),
                r.steady_cycles.to_string(),
                format!("{:.1}", r.throughput_per_mcycle),
            ]
        })
        .collect();
    println!("dead-cluster degradation curve (8-cluster machine, {jobs} jobs each):\n");
    println!(
        "{}",
        render_table(
            &[
                "dead",
                "quarantined",
                "job0 attempts",
                "diagnosis",
                "steady cyc",
                "jobs/Mcyc"
            ],
            &table,
        )
    );
    println!("=> quarantine converges to exactly the dead set; throughput degrades smoothly\n");

    let noop_byte_stable = noop_byte_stability(n, m);
    println!("zero-fault plan byte-stability: ok");

    if let Some(path) = json_arg() {
        let report = FaultSweepReport {
            seed: SEED,
            smoke,
            transient,
            rates: rate_rows,
            quarantine,
            noop_byte_stable,
        };
        write_json(&path, &report)?;
        println!("\nwrote {}", path.display());
    }
    Ok(())
}
