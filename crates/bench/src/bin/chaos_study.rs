//! The **chaos study**: fault rate × shard count × recovery policy on
//! the `mpsoc-serve` front-end, with every cell co-simulated — the
//! self-healing loop (strike accounting → mid-stream auto-quarantine →
//! shard health → failover and redirect) proved end to end under
//! seeded hardware failure.
//!
//! Every fleet carries a seeded per-shard [`FaultPlan`] in which shard
//! 0 is the *rotten machine*: every one of its clusters has a flaky DMA
//! engine corrupting bursts at the swept rate, while the other shards
//! run clean (disarmed) plans. Each cell replays the *same* seeded
//! Poisson job stream (seed depends on load and shard count, never on
//! rate or recovery arm) under one of three recovery policies:
//!
//! - **none** — auto-quarantine disabled, no failover, no redirect:
//!   corruption is absorbed by bounded re-dispatch alone, so every job
//!   on the rotten shard pays up to 4× its service time forever;
//! - **quarantine** — the three-strike board retires flaky clusters
//!   mid-stream, but a dead shard strands its queue (typed
//!   `DegradedMachine` rejections at drain);
//! - **full** — quarantine plus failover of a dead shard's queue to
//!   survivors and bounded redirect of backpressure-rejected jobs.
//!
//! Self-asserted claims: (1) zero-rate cells are byte-identical to the
//! same cell with no plan installed at all — a disarmed fault plan, and
//! the armed recovery machinery over a healthy fleet, are
//! observationally invisible; (2) at the maximum fault rate the
//! quarantining arms retire the rotten shard's clusters *mid-stream*
//! (nonzero quarantine mass, fleet still completing jobs) and pay
//! fewer corruption re-dispatches than the no-recovery arm; (3) at the
//! 2.5× overload witness cell, full recovery beats no-recovery on SLO
//! attainment by ≥ 15%; (4) every job resolves exactly once in every
//! cell; (5) an in-process replay of the first cell is exactly
//! reproducible. Wall-clock throughput goes **only** into
//! `BENCH_chaos.json`; the `--json` artifact is a pure function of the
//! seed, so CI runs the study twice and requires byte-identical output.
//!
//! ```text
//! cargo run --release -p mpsoc-bench --bin chaos_study \
//!     [-- --smoke] [-- --json out.json] [-- --replay recorded.json]
//! ```
//!
//! `--replay <path>` re-reads a recorded artifact, re-runs the study at
//! the recorded scale, and requires the fresh report to serialize
//! byte-identically — the whole chaos path is a pure function of the
//! seed or the artifact is stale.

use std::path::PathBuf;
use std::time::Instant;

use mpsoc_bench::{json_arg, render_table, write_bench_sidecar, write_json};
use mpsoc_offload::Offloader;
use mpsoc_sched::{
    AdmissionController, AdmissionDecision, ArrivalPattern, ModelTable, ServiceBackend, Workload,
};
use mpsoc_serve::{Fleet, FleetConfig, FleetSlo, PlacementPolicy};
use mpsoc_soc::{FaultPlan, SocConfig};
use serde::{Deserialize, Serialize};

const SEED: u64 = 0xC_4A05_F1EE;
const CLUSTERS_PER_SHARD: usize = 2;
/// Tight on purpose: a short admission queue keeps the waiting time of
/// *admitted* jobs inside their deadline slack, so SLO attainment
/// separates "served by healthy hardware" from "served late by flaky
/// hardware" instead of being swamped by queueing delay.
const QUEUE_LIMIT: usize = 4;
/// The sweep's offered load: saturation, where lost capacity hurts.
const SWEEP_LOAD: f64 = 1.0;
/// The witness cell's offered load: deep overload, the regime the
/// attainment claim is made in.
const WITNESS_LOAD: f64 = 2.5;

/// Workload geometry of one cell: the candidate problem sizes and the
/// deadline slack range drawn against the balanced reference partition.
struct Shape {
    sizes: &'static [u64],
    slack: (f64, f64),
}

/// The sweep runs the balanced default mix.
const SWEEP_SHAPE: Shape = Shape {
    sizes: &[256, 512, 1024, 2048, 4096],
    slack: (1.5, 6.0),
};

/// The witness cell's bimodal mix, chosen against the paper-default
/// model curves so corruption *couples* the job classes through the
/// allocator:
///
/// - **n = 512** admits at `M_min = 1` for every slack draw (t̂(1) =
///   661 ≤ 1.5 × t̂(8) = 774) with a deadline of 774–955 cycles — tight
///   enough that a job served at 4× corrupt tax (2644 cycles), or one
///   stuck behind a wide job, always misses;
/// - **n = 16384** is *forced* to `M_min = 2` (t̂(1) = 9788 exceeds
///   every deadline ≤ 1.85 × t̂(8) = 9489, while t̂(2) = 7125 fits every
///   one ≥ 1.5 × 5129 = 7694), so on a two-cluster shard it spans both
///   clusters — flaky DMA included — and its corrupt-tax completion
///   (28500 cycles) can never meet any deadline in the range;
/// - the host (1832 and 57384 cycles) meets neither class's deadline,
///   so no job escapes the accelerator path.
///
/// Without recovery, strict-FIFO shards keep dispatching doomed wide
/// jobs that occupy the *healthy* cluster alongside the flaky one;
/// with quarantine the degraded shard sheds them at admission as typed
/// `DegradedMachine` rejections and its surviving cluster serves the
/// narrow class almost unloaded.
const WITNESS_SHAPE: Shape = Shape {
    sizes: &[512, 16384],
    slack: (1.5, 1.85),
};

/// How a fleet responds to corrupting hardware.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Recovery {
    /// Re-dispatch absorbs corruption; nothing is ever retired.
    None,
    /// Auto-quarantine retires flaky clusters; dead shards strand.
    Quarantine,
    /// Quarantine + failover of dead queues + redirect on backpressure.
    Full,
}

const ALL_RECOVERY: [Recovery; 3] = [Recovery::None, Recovery::Quarantine, Recovery::Full];

impl Recovery {
    fn name(self) -> &'static str {
        match self {
            Recovery::None => "none",
            Recovery::Quarantine => "quarantine",
            Recovery::Full => "full",
        }
    }
}

/// One `(rate, shards, recovery)` cell of the study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct ChaosRow {
    recovery: String,
    fault_rate: f64,
    offered_load: f64,
    shards: u64,
    clusters_per_shard: u64,
    queue_limit: u64,
    jobs: u64,
    completed: u64,
    offloaded: u64,
    host_runs: u64,
    rejected: u64,
    queue_full: u64,
    retries: u64,
    quarantined_clusters: u64,
    dead_shards: u64,
    failovers: u64,
    redirects: u64,
    deadline_met: u64,
    attainment: f64,
    p50: Option<u64>,
    p99: Option<u64>,
    makespan: u64,
}

/// The deterministic artifact: every cell, plus the run shape.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct ChaosStudyReport {
    smoke: bool,
    total_jobs: u64,
    rows: Vec<ChaosRow>,
}

/// Recovery-arm summary per cell: the study-specific `detail` payload
/// of the shared `BENCH_chaos.json` sidecar.
#[derive(Debug, Serialize)]
struct BenchCell {
    fault_rate: f64,
    shards: u64,
    recovery: String,
    attainment: f64,
    quarantined_clusters: u64,
}

fn fmt_p(p: Option<u64>) -> String {
    p.map_or_else(|| "-".to_owned(), |v| v.to_string())
}

fn stream_seed(load: f64, shards: usize) -> u64 {
    // Rate- and arm-independent: every recovery policy at a given
    // (load, shards) replays the identical stream.
    SEED ^ (load * 1000.0) as u64 ^ ((shards as u64) << 32)
}

/// The fleet's failure geography. Shard 0 is the *rotten machine*:
/// every cluster's DMA engine is flaky at `rate`, so under quarantine
/// it dies outright and exercises failover. Every other shard has
/// exactly one flaky cluster — cluster 0, the first-fit allocator's
/// *preferred* target — so without quarantine the poisoned cluster
/// keeps re-capturing work, while with it the shard degrades to its
/// healthy remainder. At `rate == 0.0` every site is disarmed and the
/// plan must be observationally invisible (the zero-rate cells prove it
/// byte-for-byte).
fn shard_plan(rate: f64, shard: usize) -> FaultPlan {
    let mut plan = FaultPlan::with_seed(SEED ^ (shard as u64).wrapping_mul(0x9E37_79B9));
    plan.flaky_corrupt_rate = rate;
    plan.flaky_clusters = if shard == 0 {
        (1u64 << CLUSTERS_PER_SHARD) - 1
    } else {
        0b1
    };
    plan
}

/// Generates the cell's job stream and replays it through a
/// co-simulated fleet under one recovery policy. `install_plans: false`
/// is the pristine baseline the zero-rate cells are compared against.
#[allow(clippy::too_many_arguments)] // one flat cell coordinate, as in the other studies
fn run_cell(
    table: &ModelTable,
    shape: &Shape,
    load: f64,
    shards: usize,
    rate: f64,
    recovery: Recovery,
    jobs_per_cell: usize,
    install_plans: bool,
) -> Result<(ChaosRow, FleetSlo), Box<dyn std::error::Error>> {
    let config = FleetConfig {
        shards,
        clusters_per_shard: CLUSTERS_PER_SHARD,
        queue_limit: QUEUE_LIMIT,
        placement: PlacementPolicy::ModelGuided,
        steal: true,
        redirect_budget: if recovery == Recovery::Full { 2 } else { 0 },
        failover: recovery == Recovery::Full,
    };
    let seed = stream_seed(load, shards);
    let mut workload = Workload::balanced(
        jobs_per_cell,
        seed,
        ArrivalPattern::Poisson {
            mean_interarrival: 1.0,
        },
    );
    workload.sizes = shape.sizes.to_vec();
    workload.slack = shape.slack;
    // Price the stream at its admitted partition, exactly as
    // `serve_study` does, so `load` is a true offered-utilization ratio
    // against the *configured* (healthy) capacity. The pricing is
    // rate- and arm-independent by construction.
    let probe = workload.generate(table);
    let admission = AdmissionController::new(table.clone(), config.clusters_per_shard as u64);
    let admitted_demand: f64 = probe
        .iter()
        .map(|j| match admission.admit(j) {
            AdmissionDecision::Offload { m_min, predicted } => m_min as f64 * predicted,
            _ => 0.0,
        })
        .sum::<f64>()
        / probe.len() as f64;
    let total_clusters = (config.shards * config.clusters_per_shard) as f64;
    workload.arrivals = ArrivalPattern::Poisson {
        mean_interarrival: admitted_demand / (load * total_clusters),
    };
    let stream = workload.generate(table);

    let mut backends = Vec::with_capacity(config.shards);
    for i in 0..config.shards {
        let mut offloader = Offloader::new(SocConfig::with_clusters(config.clusters_per_shard))?;
        if install_plans {
            offloader.install_faults(shard_plan(rate, i));
        }
        backends.push(ServiceBackend::co_simulated(offloader, seed ^ i as u64));
    }
    let mut fleet = Fleet::with_backends(config, table, backends);
    if recovery == Recovery::None {
        fleet.set_auto_quarantine(None);
    }
    for job in &stream {
        fleet.submit(job.kernel, job.n, job.deadline, job.arrival)?;
    }
    fleet.drain()?;
    let slo = FleetSlo::from_fleet(&fleet);
    assert_eq!(
        slo.completed + slo.rejected,
        slo.submitted,
        "every job must resolve exactly once \
         (rate={rate}, shards={shards}, recovery={})",
        recovery.name()
    );
    let row = ChaosRow {
        recovery: recovery.name().to_owned(),
        fault_rate: rate,
        offered_load: load,
        shards: slo.shards,
        clusters_per_shard: slo.clusters_per_shard,
        queue_limit: config.queue_limit as u64,
        jobs: slo.submitted,
        completed: slo.completed,
        offloaded: slo.offloaded,
        host_runs: slo.host_runs,
        rejected: slo.rejected,
        queue_full: slo.queue_full,
        retries: slo.retries,
        quarantined_clusters: slo.quarantined_clusters,
        dead_shards: slo.dead_shards,
        failovers: slo.failovers,
        redirects: slo.redirects,
        deadline_met: slo.deadline_met,
        attainment: slo.attainment,
        p50: slo.p50,
        p99: slo.p99,
        makespan: slo.makespan,
    };
    Ok((row, slo))
}

/// Runs the whole study and returns the deterministic report (the
/// printed narration is a side effect). Factored out so `--replay` can
/// recompute a recorded artifact bit-for-bit.
fn compute_report(smoke: bool) -> Result<ChaosStudyReport, Box<dyn std::error::Error>> {
    let (rates, shard_counts, jobs_per_cell, witness_jobs): (&[f64], &[usize], usize, usize) =
        if smoke {
            (&[0.0, 1.0], &[2], 48, 400)
        } else {
            (&[0.0, 0.2, 1.0], &[2, 4], 240, 800)
        };
    let table = ModelTable::paper_defaults();
    let mut rows: Vec<ChaosRow> = Vec::new();

    // The sweep: fault rate × shards × recovery arm, all co-simulated.
    for &rate in rates {
        for &shards in shard_counts {
            for recovery in ALL_RECOVERY {
                let (row, _) = run_cell(
                    &table,
                    &SWEEP_SHAPE,
                    SWEEP_LOAD,
                    shards,
                    rate,
                    recovery,
                    jobs_per_cell,
                    true,
                )?;
                println!(
                    "rate={rate:.1} shards={shards} {:<10} quarantined={} dead={} \
                     retries={} failovers={} redirects={} attainment={:.3}",
                    row.recovery,
                    row.quarantined_clusters,
                    row.dead_shards,
                    row.retries,
                    row.failovers,
                    row.redirects,
                    row.attainment
                );
                rows.push(row);
            }
        }
    }

    let cell = |rows: &[ChaosRow], rate: f64, shards: usize, arm: Recovery| -> ChaosRow {
        rows.iter()
            .find(|r| r.fault_rate == rate && r.shards == shards as u64 && r.recovery == arm.name())
            .expect("sweep cell")
            .clone()
    };

    // Claim 1: a zero-rate plan (and the armed recovery machinery over
    // the healthy fleet it implies) is byte-invisible — every zero-rate
    // cell must match the same cell with *no plan installed at all*.
    for &shards in shard_counts {
        for recovery in ALL_RECOVERY {
            let planned = cell(&rows, 0.0, shards, recovery);
            let (pristine, _) = run_cell(
                &table,
                &SWEEP_SHAPE,
                SWEEP_LOAD,
                shards,
                0.0,
                recovery,
                jobs_per_cell,
                false,
            )?;
            assert_eq!(
                planned,
                pristine,
                "shards={shards} {}: a disarmed fault plan must be invisible",
                recovery.name()
            );
            assert_eq!(planned.quarantined_clusters, 0);
            assert_eq!(planned.dead_shards, 0);
        }
    }
    println!("zero-rate cells reproduce the no-plan fleet byte-for-byte");

    // Claim 2: at the top fault rate the quarantining arms retire the
    // rotten shard mid-stream and stop paying the re-dispatch tax.
    let top = *rates.last().expect("rates");
    for &shards in shard_counts {
        let none = cell(&rows, top, shards, Recovery::None);
        let quarantine = cell(&rows, top, shards, Recovery::Quarantine);
        let full = cell(&rows, top, shards, Recovery::Full);
        assert_eq!(
            none.quarantined_clusters, 0,
            "the no-recovery arm must never quarantine"
        );
        for armed in [&quarantine, &full] {
            assert!(
                armed.quarantined_clusters > 0,
                "shards={shards} {}: auto-quarantine must fire mid-stream",
                armed.recovery
            );
            assert!(
                armed.completed > 0,
                "shards={shards} {}: the fleet must keep serving after quarantine",
                armed.recovery
            );
            assert!(
                armed.retries < none.retries,
                "shards={shards} {}: retiring flaky clusters must cut the \
                 re-dispatch tax ({} vs {})",
                armed.recovery,
                armed.retries,
                none.retries
            );
        }
        assert!(
            full.dead_shards > 0,
            "shards={shards}: the fully flaky shard must die"
        );
        println!(
            "rate={top:.1} shards={shards}: quarantine retired {} clusters, \
             retries {} -> {}",
            full.quarantined_clusters, none.retries, full.retries
        );
    }

    // Claim 3 — the witness: at 2.5x overload on the smallest fleet,
    // full recovery must beat no-recovery on SLO attainment by >= 15%.
    let witness_shards = shard_counts[0];
    let (none_w, _) = run_cell(
        &table,
        &WITNESS_SHAPE,
        WITNESS_LOAD,
        witness_shards,
        top,
        Recovery::None,
        witness_jobs,
        true,
    )?;
    let (full_w, _) = run_cell(
        &table,
        &WITNESS_SHAPE,
        WITNESS_LOAD,
        witness_shards,
        top,
        Recovery::Full,
        witness_jobs,
        true,
    )?;
    assert!(
        full_w.quarantined_clusters > 0,
        "witness: quarantine must fire mid-stream"
    );
    assert!(
        full_w.failovers > 0,
        "witness: the rotten shard's overload queue must evacuate to survivors"
    );
    assert!(
        full_w.deadline_met > 0,
        "witness: recovery must restore a nonzero deadline-met rate \
         (the claim below must not pass 0-vs-0 vacuously)"
    );
    assert!(
        full_w.attainment >= 1.15 * none_w.attainment,
        "witness: full recovery attainment {:.3} must beat no-recovery {:.3} by >= 15%",
        full_w.attainment,
        none_w.attainment
    );
    println!(
        "witness @ {WITNESS_LOAD}x overload: attainment {:.3} (none) -> {:.3} (full), \
         failovers={} redirects={}",
        none_w.attainment, full_w.attainment, full_w.failovers, full_w.redirects
    );
    rows.push(none_w);
    rows.push(full_w);

    // Claim 5: in-process replay of the first cell is exact.
    let (replay, _) = run_cell(
        &table,
        &SWEEP_SHAPE,
        SWEEP_LOAD,
        shard_counts[0],
        rates[0],
        ALL_RECOVERY[0],
        jobs_per_cell,
        true,
    )?;
    assert_eq!(
        replay, rows[0],
        "same seed + same stream must replay exactly"
    );

    let total_jobs: u64 = rows.iter().map(|r| r.jobs).sum();
    Ok(ChaosStudyReport {
        smoke,
        total_jobs,
        rows,
    })
}

fn replay_arg() -> Option<PathBuf> {
    let mut args = std::env::args();
    while let Some(arg) = args.next() {
        if arg == "--replay" {
            return args.next().map(PathBuf::from);
        }
    }
    None
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    if let Some(path) = replay_arg() {
        let recorded = std::fs::read_to_string(&path)?;
        let report: ChaosStudyReport = serde_json::from_str(&recorded)?;
        let fresh = compute_report(report.smoke)?;
        assert_eq!(
            serde_json::to_string_pretty(&fresh)?,
            recorded.trim_end(),
            "replay diverged from the recorded artifact"
        );
        println!(
            "replay: {} rows re-computed byte-identically from {}",
            fresh.rows.len(),
            path.display()
        );
        return Ok(());
    }

    let smoke = std::env::args().any(|a| a == "--smoke");
    let started = Instant::now();
    let report = compute_report(smoke)?;
    let wall = started.elapsed().as_secs_f64();

    let table_rows: Vec<Vec<String>> = report
        .rows
        .iter()
        .map(|r| {
            vec![
                r.recovery.clone(),
                format!("{:.1}", r.fault_rate),
                format!("{:.1}", r.offered_load),
                r.shards.to_string(),
                r.jobs.to_string(),
                r.rejected.to_string(),
                r.retries.to_string(),
                r.quarantined_clusters.to_string(),
                r.dead_shards.to_string(),
                r.failovers.to_string(),
                r.redirects.to_string(),
                format!("{:.3}", r.attainment),
                fmt_p(r.p99),
            ]
        })
        .collect();
    println!(
        "\n{}",
        render_table(
            &[
                "recovery", "rate", "load", "shards", "jobs", "rej", "retry", "quar", "dead",
                "failover", "redirect", "attain", "p99",
            ],
            &table_rows,
        )
    );

    let path = json_arg().unwrap_or_else(|| "results/chaos_study.json".into());
    write_json(&path, &report)?;
    println!(
        "\n{} jobs in {wall:.2}s — wrote {}",
        report.total_jobs,
        path.display()
    );

    if !smoke {
        let cells: Vec<BenchCell> = report
            .rows
            .iter()
            .map(|r| BenchCell {
                fault_rate: r.fault_rate,
                shards: r.shards,
                recovery: r.recovery.clone(),
                attainment: r.attainment,
                quarantined_clusters: r.quarantined_clusters,
            })
            .collect();
        let path = write_bench_sidecar("chaos", wall, report.total_jobs, cells)?;
        println!(
            "{:.0} jobs/sec — wrote {}",
            report.total_jobs as f64 / wall,
            path.display()
        );
    }
    Ok(())
}
