//! **Break-even analysis**: for each cluster count, the smallest problem
//! size at which offloading a DAXPY beats executing it on the host — the
//! paper's introductory framing of the offload decision, answered with
//! the fitted Eq. 1 model and confirmed by simulation.
//!
//! ```text
//! cargo run --release -p mpsoc-bench --bin breakeven [-- --json out.json]
//! ```

use mpsoc_bench::{json_arg, render_table, write_json, Harness};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut harness = Harness::new()?;
    let rows = harness.breakeven()?;

    println!("Break-even problem size: offload vs CVA6-class host execution\n");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.m.to_string(),
                r.break_even_n.to_string(),
                r.accel_cycles.to_string(),
                format!("{:.0}", r.host_cycles),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["M", "break-even N", "accel [cyc]", "host sim [cyc]"],
            &table
        )
    );

    println!(
        "break-even shrinks with more clusters: {}",
        rows.windows(2)
            .all(|w| w[1].break_even_n <= w[0].break_even_n)
    );
    println!(
        "simulation confirms the accelerator wins at break-even: {}",
        rows.iter()
            .all(|r| (r.accel_cycles as f64) < r.host_cycles * 1.02)
    );

    if let Some(path) = json_arg() {
        write_json(&path, &rows)?;
        println!("\nwrote {}", path.display());
    }
    Ok(())
}
