//! Statically verifies the whole kernel zoo with `mpsoc-lint`: every
//! kernel, every per-core slice over a size sweep, plus the checked-in
//! JSON program fixtures and the descriptor-level tile-race check.
//!
//! Exits non-zero on any lint *error*; with `--deny-warnings`, warnings
//! fail the run too (this is how CI runs it).
//!
//! ```text
//! cargo run --release -p mpsoc-bench --bin lint_kernels \
//!     [-- --deny-warnings] [-- --smoke] [-- --json out.json]
//! ```
//!
//! `--smoke` shrinks the size sweep for CI determinism gating (two runs
//! must serialize byte-identically), matching the other study binaries.

use std::fs;
use std::path::Path;
use std::process::ExitCode;

use mpsoc_bench::{json_arg, render_table, write_json};
use mpsoc_isa::Program;
use mpsoc_kernels::{
    Axpby, Daxpy, DaxpySsr, Dot, Gemv, Kernel, Memset, Scale, Stencil3, Sum, VecAdd,
};
use mpsoc_lint::descriptor::{lint_core_tiles, reference_slices};
use mpsoc_lint::{lint_program, LintContext};
use serde::Serialize;

const SIZES: [u64; 5] = [1, 7, 64, 250, 1024];
const CORES: usize = 8;

#[derive(Debug, Serialize)]
struct LintRow {
    target: String,
    programs: usize,
    ops: usize,
    warnings: usize,
    errors: usize,
}

fn zoo() -> Vec<Box<dyn Kernel>> {
    vec![
        Box::new(Daxpy::new(2.0)),
        Box::new(DaxpySsr::new(2.0)),
        Box::new(Axpby::new(1.5, -0.5)),
        Box::new(Scale::new(3.0)),
        Box::new(VecAdd::new()),
        Box::new(Memset::new(7.0)),
        Box::new(Dot::new()),
        Box::new(Sum::new()),
        Box::new(Gemv::new(vec![1.0, 2.0, 3.0])),
        Box::new(Stencil3::new(0.25, 0.5, 0.25)),
    ]
}

fn main() -> ExitCode {
    let deny_warnings = std::env::args().any(|a| a == "--deny-warnings");
    let smoke = std::env::args().any(|a| a == "--smoke");
    let sizes: &[u64] = if smoke { &[1, 64, 250] } else { &SIZES };
    let cx = LintContext::manticore();
    let mut rows: Vec<LintRow> = Vec::new();
    let mut failures = String::new();

    for kernel in zoo() {
        let mut row = LintRow {
            target: kernel.name().to_owned(),
            programs: 0,
            ops: 0,
            warnings: 0,
            errors: 0,
        };
        for &elems in sizes {
            let slices = reference_slices(kernel.as_ref(), elems, CORES);
            for diag in lint_core_tiles(kernel.as_ref(), &slices) {
                row.errors += 1;
                failures.push_str(&format!(
                    "{} (N={elems}): {}\n",
                    kernel.name(),
                    diag.message
                ));
            }
            for slice in &slices {
                if slice.elems == 0 {
                    continue;
                }
                let program = match kernel.codegen(slice) {
                    Ok(p) => p,
                    Err(e) => {
                        row.errors += 1;
                        failures.push_str(&format!(
                            "{} (N={elems}, core {}): codegen failed: {e}\n",
                            kernel.name(),
                            slice.core_index
                        ));
                        continue;
                    }
                };
                row.programs += 1;
                row.ops += program.ops().len();
                let report = lint_program(&program, &cx);
                row.warnings += report.warning_count();
                row.errors += report.error_count();
                if !report.is_clean() {
                    failures.push_str(&format!(
                        "{} (N={elems}, core {}):\n{}\n",
                        kernel.name(),
                        slice.core_index,
                        report.annotate(&program)
                    ));
                }
            }
        }
        rows.push(row);
    }

    // The checked-in fixture programs: CI tampering with these (or a
    // codegen change that invalidates them) must fail here as well.
    let fixtures = Path::new(env!("CARGO_MANIFEST_DIR")).join("../lint/fixtures");
    if let Ok(entries) = fs::read_dir(&fixtures) {
        let mut paths: Vec<_> = entries
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|e| e == "json"))
            .collect();
        paths.sort();
        for path in paths {
            let name = path.file_stem().unwrap_or_default().to_string_lossy();
            let mut row = LintRow {
                target: format!("fixture:{name}"),
                programs: 0,
                ops: 0,
                warnings: 0,
                errors: 0,
            };
            let parsed: Result<Program, _> = fs::read_to_string(&path)
                .map_err(|e| e.to_string())
                .and_then(|text| serde_json::from_str(&text).map_err(|e| e.to_string()));
            match parsed {
                Ok(program) => {
                    row.programs = 1;
                    row.ops = program.ops().len();
                    let report = lint_program(&program, &cx);
                    row.warnings += report.warning_count();
                    row.errors += report.error_count();
                    if !report.is_clean() {
                        failures.push_str(&format!(
                            "{}:\n{}\n",
                            path.display(),
                            report.annotate(&program)
                        ));
                    }
                }
                Err(e) => {
                    row.errors += 1;
                    failures.push_str(&format!("{}: unreadable: {e}\n", path.display()));
                }
            }
            rows.push(row);
        }
    }

    println!("mpsoc-lint — static verification of the kernel zoo\n");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.target.clone(),
                r.programs.to_string(),
                r.ops.to_string(),
                r.warnings.to_string(),
                r.errors.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["target", "programs", "ops", "warnings", "errors"], &table)
    );

    let warnings: usize = rows.iter().map(|r| r.warnings).sum();
    let errors: usize = rows.iter().map(|r| r.errors).sum();
    if !failures.is_empty() {
        println!("findings:\n{failures}");
    }
    println!("total: {warnings} warning(s), {errors} error(s)");

    if let Some(path) = json_arg() {
        if let Err(e) = write_json(&path, &rows) {
            eprintln!("failed to write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("wrote {}", path.display());
    }

    if errors > 0 || (deny_warnings && warnings > 0) {
        println!("FAILED");
        ExitCode::FAILURE
    } else {
        println!("ok");
        ExitCode::SUCCESS
    }
}
