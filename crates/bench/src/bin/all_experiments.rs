//! Runs **every experiment** in sequence and writes the JSON artifacts
//! under `results/` — the inputs to `EXPERIMENTS.md`.
//!
//! ```text
//! cargo run --release -p mpsoc-bench --bin all_experiments
//! ```

use std::path::Path;

use mpsoc_bench::{write_csv, write_json, Harness};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out = Path::new("results");
    let mut harness = Harness::new()?;

    println!("[1/10] fig1_left");
    let fig1_left = harness.fig1_left()?;
    write_json(&out.join("fig1_left.json"), &fig1_left)?;
    write_csv(
        &out.join("fig1_left.csv"),
        &["m", "baseline", "extended"],
        &fig1_left
            .iter()
            .map(|r| {
                vec![
                    r.m.to_string(),
                    r.baseline.to_string(),
                    r.extended.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    )?;

    println!("[2/10] fig1_right");
    let fig1_right = harness.fig1_right()?;
    write_json(&out.join("fig1_right.json"), &fig1_right)?;
    write_csv(
        &out.join("fig1_right.csv"),
        &["n", "m", "baseline", "extended", "speedup"],
        &fig1_right
            .iter()
            .map(|r| {
                vec![
                    r.n.to_string(),
                    r.m.to_string(),
                    r.baseline.to_string(),
                    r.extended.to_string(),
                    format!("{:.4}", r.speedup),
                ]
            })
            .collect::<Vec<_>>(),
    )?;

    println!("[3/10] headline");
    let headline = harness.headline()?;
    write_json(&out.join("headline.json"), &headline)?;
    println!(
        "      improvement {:.1}% (paper 47.9%), gap {} cycles (paper >300)",
        headline.improvement_pct, headline.gap_cycles
    );

    println!("[4/10] model_fit");
    let fit = harness.model_fit()?;
    write_json(&out.join("model_fit.json"), &fit)?;
    println!("      fitted {}", fit.fitted);

    println!("[5/10] mape_table");
    let (_, mape_rows) = harness.mape_table()?;
    write_json(&out.join("mape_table.json"), &mape_rows)?;
    for r in &mape_rows {
        println!("      N={:>5}  MAPE {:.3}%", r.n, r.mape_pct);
    }

    println!("[6/10] decision");
    let (_, decision_rows) = harness.decision_table(1.0)?;
    write_json(&out.join("decision.json"), &decision_rows)?;
    println!(
        "      {}/{} decisions confirmed",
        decision_rows.iter().filter(|r| r.confirmed).count(),
        decision_rows.len()
    );

    println!("[7/10] ablation + kernel_sweep");
    let ablation = harness.ablation()?;
    write_json(&out.join("ablation.json"), &ablation)?;
    let sweep = harness.kernel_sweep()?;
    write_json(&out.join("kernel_sweep.json"), &sweep)?;

    println!("[8/10] breakeven");
    let breakeven = harness.breakeven()?;
    write_json(&out.join("breakeven.json"), &breakeven)?;

    println!("[9/10] energy");
    let energy = harness.energy_sweep()?;
    write_json(&out.join("energy.json"), &energy)?;

    println!("[10/10] extension experiment artifacts (run their bins with --json for tables)");
    // The four extension bins (pipeline, sensitivity, codegen_ablation,
    // bank_ablation) are slower sweeps; emit a pointer file so the
    // results directory documents how to regenerate them.
    std::fs::write(
        out.join("EXTENSIONS.txt"),
        "Extension experiments (run with --json <path> to emit artifacts):\n\
         cargo run --release -p mpsoc-bench --bin pipeline\n\
         cargo run --release -p mpsoc-bench --bin sensitivity\n\
         cargo run --release -p mpsoc-bench --bin codegen_ablation\n\
         cargo run --release -p mpsoc-bench --bin bank_ablation\n",
    )?;

    println!("\nall artifacts written to {}", out.display());
    Ok(())
}
