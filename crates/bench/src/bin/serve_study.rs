//! The **fleet serving study**: offered load × shard count × placement
//! policy on the `mpsoc-serve` front-end, at serving scale.
//!
//! Each cell replays the *same* seeded Poisson job stream (seed depends
//! on load and shard count, never on policy) through a fleet of
//! independent SoC shards behind the balancer, and reports fleet-merged
//! SLOs: p50/p99 completion latency from exact per-shard histogram
//! merges, deadline attainment, host/offload/reject/steal accounting.
//! The sweep cells run on the analytic (Eq. 1) service backend so one
//! run sustains over a million jobs; two witness sections prove the
//! parts the sweep abstracts away:
//!
//! - **backpressure cells** rerun the overload point with a tight
//!   admission-queue cap and must reject with `QueueFull`,
//! - a **co-simulated witness** drives a small fleet of real simulated
//!   SoCs (with one injected DMA corruption per shard) through the same
//!   serving path, proving the stack end-to-end: every job resolves,
//!   and the corruption re-dispatch surfaces as a nonzero fleet retry
//!   count — the `JobRecord::retries` loop closed.
//!
//! Self-asserted claims: (1) the full run offers ≥ 1M jobs; (2) at ≥2×
//! overload, least-loaded or model-guided placement beats round-robin
//! on fleet p99 for every shard count; (3) backpressure cells reject
//! with `QueueFull`; (4) an in-process replay of one cell is exactly
//! reproducible. Wall-clock throughput goes **only** into
//! `BENCH_serve.json`; the `--json` artifact is a pure function of the
//! seed, so CI runs the study twice and requires byte-identical output.
//!
//! ```text
//! cargo run --release -p mpsoc-bench --bin serve_study [-- --smoke] [-- --json out.json]
//! ```

use std::time::Instant;

use mpsoc_bench::{json_arg, render_table, write_bench_sidecar, write_json};
use mpsoc_offload::Offloader;
use mpsoc_sched::{
    AdmissionController, AdmissionDecision, ArrivalPattern, ModelTable, ServiceBackend, Workload,
};
use mpsoc_serve::{Fleet, FleetConfig, FleetSlo, PlacementPolicy, ALL_PLACEMENTS};
use mpsoc_soc::{FaultPlan, SiteSpec, SocConfig};
use serde::{Deserialize, Serialize};

/// One `(backend, load, shards, policy)` cell of the study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct ServeStudyRow {
    backend: String,
    offered_load: f64,
    shards: u64,
    clusters_per_shard: u64,
    queue_limit: u64,
    steal: bool,
    placement: String,
    jobs: u64,
    completed: u64,
    offloaded: u64,
    host_runs: u64,
    rejected: u64,
    queue_full: u64,
    steals: u64,
    retries: u64,
    deadline_met: u64,
    attainment: f64,
    /// `None` when the cell completed nothing (all-rejected). `Some(x)`
    /// serializes as the bare number, so populated cells keep the old
    /// artifact layout.
    p50: Option<u64>,
    p99: Option<u64>,
    mean_latency: f64,
    makespan: u64,
}

/// Renders an optional quantile for tables and logs.
fn fmt_p(p: Option<u64>) -> String {
    p.map_or_else(|| "-".to_owned(), |v| v.to_string())
}

/// The deterministic artifact: every cell, plus the run shape.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct ServeStudyReport {
    smoke: bool,
    total_jobs: u64,
    rows: Vec<ServeStudyRow>,
}

/// SLO attainment summary per sweep cell: the study-specific `detail`
/// payload of the shared `BENCH_serve.json` sidecar.
#[derive(Debug, Serialize)]
struct BenchCell {
    offered_load: f64,
    shards: u64,
    placement: String,
    attainment: f64,
    p99: Option<u64>,
}

const SEED: u64 = 0x5E17_F1EE;
const CLUSTERS_PER_SHARD: usize = 4;
/// Every shard bounds its admission queue, as any real serving system
/// must: under sustained overload an unbounded queue makes all
/// work-conserving placements converge (the backlog swamps any
/// imbalance), while a bounded queue turns cycle-imbalance into the two
/// things a front-end actually observes — tail latency and rejections.
const QUEUE_LIMIT: usize = 32;

fn stream_seed(load: f64, shards: usize) -> u64 {
    // Policy-independent: every policy replays the identical stream.
    SEED ^ (load * 1000.0) as u64 ^ ((shards as u64) << 32)
}

/// Generates the cell's job stream and replays it through a fleet.
fn run_cell(
    table: &ModelTable,
    config: FleetConfig,
    load: f64,
    jobs_per_cell: usize,
    cosim: bool,
) -> Result<(ServeStudyRow, FleetSlo), Box<dyn std::error::Error>> {
    let seed = stream_seed(load, config.shards);
    let mut workload = Workload::balanced(
        jobs_per_cell,
        seed,
        ArrivalPattern::Poisson {
            mean_interarrival: 1.0,
        },
    );
    if !cosim {
        // Serving traffic is heavy-tailed: stretch the size distribution
        // two octaves past the balanced default so per-job demand varies
        // by ~50x. Count-balanced placement (round-robin) then
        // accumulates cycle imbalance that load-aware placement avoids —
        // the effect the study measures. The co-simulated witness keeps
        // the balanced sizes: 32Ki-element operands exceed a real
        // cluster's TCDM.
        workload.sizes = vec![256, 512, 1024, 2048, 4096, 8192, 16384, 32768];
    }
    // Price the stream at its *admitted* partition (Eq. 3 m_min), not
    // the reference size: these kernels are overhead-dominated, so the
    // deadline-minimal partition costs ~5x fewer cluster-cycles than
    // the reference prediction, and the naive
    // `interarrival_for_load` gap would leave a nominal 2.5x overload
    // running the fleet half idle. With the admitted pricing, ρ is a
    // true offered-utilization ratio. (The kernel/size/deadline draws
    // do not depend on the arrival gap, so the probe stream carries
    // the same jobs the run will see.)
    let probe = workload.generate(table);
    let admission = AdmissionController::new(table.clone(), config.clusters_per_shard as u64);
    let admitted_demand: f64 = probe
        .iter()
        .map(|j| match admission.admit(j) {
            AdmissionDecision::Offload { m_min, predicted } => m_min as f64 * predicted,
            _ => 0.0,
        })
        .sum::<f64>()
        / probe.len() as f64;
    let total_clusters = (config.shards * config.clusters_per_shard) as f64;
    workload.arrivals = ArrivalPattern::Poisson {
        mean_interarrival: admitted_demand / (load * total_clusters),
    };
    let stream = workload.generate(table);

    let mut fleet = if cosim {
        let mut backends = Vec::with_capacity(config.shards);
        for i in 0..config.shards {
            let mut offloader =
                Offloader::new(SocConfig::with_clusters(config.clusters_per_shard))?;
            // One DMA corruption per shard: the serving path must absorb
            // it via bounded re-dispatch and report it as a retry.
            let mut plan = FaultPlan::with_seed(SEED ^ i as u64);
            plan.dma_corrupt = SiteSpec::once_at(0);
            offloader.install_faults(plan);
            backends.push(ServiceBackend::co_simulated(offloader, seed ^ i as u64));
        }
        Fleet::with_backends(config, table, backends)
    } else {
        Fleet::analytic(config, table)
    };

    for job in &stream {
        fleet.submit(job.kernel, job.n, job.deadline, job.arrival)?;
    }
    fleet.drain()?;
    let slo = FleetSlo::from_fleet(&fleet);
    let row = ServeStudyRow {
        backend: if cosim { "cosim" } else { "analytic" }.to_owned(),
        offered_load: load,
        shards: slo.shards,
        clusters_per_shard: slo.clusters_per_shard,
        queue_limit: config.queue_limit as u64,
        steal: config.steal,
        placement: slo.placement.clone(),
        jobs: slo.submitted,
        completed: slo.completed,
        offloaded: slo.offloaded,
        host_runs: slo.host_runs,
        rejected: slo.rejected,
        queue_full: slo.queue_full,
        steals: slo.steals,
        retries: slo.retries,
        deadline_met: slo.deadline_met,
        attainment: slo.attainment,
        p50: slo.p50,
        p99: slo.p99,
        mean_latency: slo.mean_latency,
        makespan: slo.makespan,
    };
    Ok((row, slo))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (loads, shard_counts, jobs_per_cell, witness_jobs): (&[f64], &[usize], usize, usize) =
        if smoke {
            (&[0.6, 2.5], &[2, 4], 400, 24)
        } else {
            (&[0.6, 1.0, 2.5], &[2, 4, 8], 40_000, 80)
        };

    let table = ModelTable::paper_defaults();
    let started = Instant::now();
    let mut rows: Vec<ServeStudyRow> = Vec::new();

    // The sweep: load × shards × placement on the analytic backend.
    for &load in loads {
        for &shards in shard_counts {
            for placement in ALL_PLACEMENTS {
                let config = FleetConfig {
                    shards,
                    clusters_per_shard: CLUSTERS_PER_SHARD,
                    queue_limit: QUEUE_LIMIT,
                    placement,
                    steal: true,
                    redirect_budget: 0,
                    failover: false,
                };
                let (row, slo) = run_cell(&table, config, load, jobs_per_cell, false)?;
                let util = slo.per_shard.iter().map(|s| s.utilization).sum::<f64>()
                    / slo.per_shard.len() as f64;
                println!(
                    "load={load:.1} shards={shards} {:<12} p99={} attainment={:.3} \
                     util={util:.2} qfull={}",
                    row.placement,
                    fmt_p(row.p99),
                    row.attainment,
                    row.queue_full
                );
                rows.push(row);
            }
        }
    }
    let overload = loads.last().copied().expect("loads");

    // Stealing ablation: round-robin at the saturation point with and
    // without work stealing — idle shards rescuing queued work must
    // actually fire, repairing the blind policy's imbalance.
    for &shards in shard_counts {
        let mut ablation = Vec::new();
        for steal in [false, true] {
            let config = FleetConfig {
                shards,
                clusters_per_shard: CLUSTERS_PER_SHARD,
                queue_limit: QUEUE_LIMIT,
                placement: PlacementPolicy::RoundRobin,
                steal,
                redirect_budget: 0,
                failover: false,
            };
            let (row, _) = run_cell(&table, config, 1.0, jobs_per_cell, false)?;
            ablation.push(row);
        }
        let (without, with) = (&ablation[0], &ablation[1]);
        assert!(
            with.steals > 0,
            "shards={shards}: stealing must fire at the saturation point"
        );
        println!(
            "shards={shards} @ 1.0x: stealing moved {} jobs, p99 {} -> {}",
            with.steals,
            fmt_p(without.p99),
            fmt_p(with.p99)
        );
        rows.extend(ablation);
    }

    // Co-simulated witness: a small fleet of real simulated SoCs with
    // one injected DMA corruption per shard, through the same path.
    let witness_config = FleetConfig {
        shards: 2,
        clusters_per_shard: 2,
        queue_limit: 64,
        placement: PlacementPolicy::LeastLoaded,
        steal: true,
        redirect_budget: 0,
        failover: false,
    };
    let (witness, witness_slo) = run_cell(&table, witness_config, 1.2, witness_jobs, true)?;
    assert_eq!(
        witness.completed + witness.rejected,
        witness.jobs,
        "every witness job must resolve exactly once"
    );
    assert!(
        witness.retries > 0,
        "the injected corruptions must surface as fleet retries"
    );
    assert!(
        witness_slo.per_shard.len() == 2,
        "witness fleet must report both shards"
    );
    rows.push(witness);

    // Replay determinism, in-process: the first sweep cell again, and
    // the whole row must match exactly.
    let replay_config = FleetConfig {
        shards: shard_counts[0],
        clusters_per_shard: CLUSTERS_PER_SHARD,
        queue_limit: QUEUE_LIMIT,
        placement: ALL_PLACEMENTS[0],
        steal: true,
        redirect_budget: 0,
        failover: false,
    };
    let (replay, _) = run_cell(&table, replay_config, loads[0], jobs_per_cell, false)?;
    assert_eq!(
        replay, rows[0],
        "same seed + same stream must replay exactly"
    );

    let total_jobs: u64 = rows.iter().map(|r| r.jobs).sum();
    let wall = started.elapsed().as_secs_f64();

    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.backend.clone(),
                format!("{:.1}", r.offered_load),
                r.shards.to_string(),
                r.queue_limit.to_string(),
                if r.steal { "on" } else { "off" }.to_owned(),
                r.placement.clone(),
                r.jobs.to_string(),
                r.rejected.to_string(),
                r.queue_full.to_string(),
                r.steals.to_string(),
                r.retries.to_string(),
                format!("{:.3}", r.attainment),
                fmt_p(r.p50),
                fmt_p(r.p99),
            ]
        })
        .collect();
    println!(
        "\n{}",
        render_table(
            &[
                "backend",
                "load",
                "shards",
                "cap",
                "steal",
                "placement",
                "jobs",
                "rej",
                "qfull",
                "stolen",
                "retry",
                "attain",
                "p50",
                "p99",
            ],
            &table_rows,
        )
    );

    // The serving thesis: at ≥2x overload, load-aware placement beats
    // blind rotation on tail latency, for every fleet size. The fleet
    // must also visibly push back instead of queueing without bound.
    for &shards in shard_counts {
        let cell = |name: &str| {
            rows.iter()
                .find(|r| {
                    r.backend == "analytic"
                        && r.offered_load == overload
                        && r.shards == shards as u64
                        && r.steal
                        && r.placement == name
                })
                .expect("sweep cell")
        };
        let rr = cell("round_robin");
        let rr_p99 = rr.p99.expect("overloaded round-robin completes jobs");
        let best = cell("least_loaded")
            .p99
            .expect("least-loaded completes jobs")
            .min(
                cell("model_guided")
                    .p99
                    .expect("model-guided completes jobs"),
            );
        assert!(
            best < rr_p99,
            "shards={shards}: load-aware p99 {best} must beat round-robin {rr_p99}"
        );
        assert!(
            rr.queue_full > 0,
            "shards={shards}: overload must trigger queue-depth backpressure"
        );
        println!(
            "shards={shards} @ {overload}x overload: load-aware p99 {best} < round-robin {rr_p99}"
        );
    }
    if !smoke {
        assert!(
            total_jobs >= 1_000_000,
            "the full study must offer at least 1M jobs, got {total_jobs}"
        );
    }

    let report = ServeStudyReport {
        smoke,
        total_jobs,
        rows,
    };
    let path = json_arg().unwrap_or_else(|| "results/serve_study.json".into());
    write_json(&path, &report)?;
    println!(
        "\n{total_jobs} jobs in {wall:.2}s — wrote {}",
        path.display()
    );

    if !smoke {
        let cells: Vec<BenchCell> = report
            .rows
            .iter()
            .filter(|r| r.backend == "analytic" && r.steal)
            .map(|r| BenchCell {
                offered_load: r.offered_load,
                shards: r.shards,
                placement: r.placement.clone(),
                attainment: r.attainment,
                p99: r.p99,
            })
            .collect();
        let path = write_bench_sidecar("serve", wall, total_jobs, cells)?;
        println!(
            "{:.0} jobs/sec — wrote {}",
            total_jobs as f64 / wall,
            path.display()
        );
    }
    Ok(())
}
