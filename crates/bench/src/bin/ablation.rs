//! **Ablation** of the two co-design ingredients (§II): dispatch
//! strategy and synchronization strategy in isolation, on the
//! 1024-element DAXPY.
//!
//! ```text
//! cargo run --release -p mpsoc-bench --bin ablation [-- --json out.json]
//! ```

use mpsoc_bench::{json_arg, render_table, write_json, Harness, PAPER_M};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut harness = Harness::new()?;
    let rows = harness.ablation()?;

    println!("Ablation — DAXPY N=1024 runtime [cycles] per strategy\n");
    let strategies: Vec<String> = {
        let mut s: Vec<String> = rows.iter().map(|r| r.strategy.clone()).collect();
        s.dedup();
        s
    };
    let mut table = Vec::new();
    for strategy in &strategies {
        let mut cells = vec![strategy.clone()];
        for &m in &PAPER_M {
            let r = rows
                .iter()
                .find(|r| &r.strategy == strategy && r.m == m)
                .expect("full grid");
            cells.push(r.cycles.to_string());
        }
        table.push(cells);
    }
    let header: Vec<String> = std::iter::once("strategy \\ M".to_owned())
        .chain(PAPER_M.iter().map(|m| m.to_string()))
        .collect();
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    println!("{}", render_table(&header_refs, &table));

    // At M=32, each ingredient should help on its own and the
    // combination should be the best configuration.
    let at32 = |s: &str| {
        rows.iter()
            .find(|r| r.strategy == s && r.m == 32)
            .expect("grid")
            .cycles
    };
    let base = at32("sequential+software-barrier");
    let mc_only = at32("multicast+software-barrier");
    let credit_only = at32("sequential+credit-counter");
    let both = at32("multicast+credit-counter");
    println!("at M=32: baseline={base}, +multicast={mc_only}, +credit={credit_only}, both={both}");
    println!(
        "multicast helps under either sync scheme: {}",
        mc_only < base && both < credit_only
    );
    println!(
        "credit counter helps once completions arrive together (multicast): {}",
        both < mc_only
    );
    println!(
        "combination is the best configuration: {}",
        both < mc_only && both < credit_only && both < base
    );

    if let Some(path) = json_arg() {
        write_json(&path, &rows)?;
        println!("\nwrote {}", path.display());
    }
    Ok(())
}
