//! The **throughput study**: how fast does the simulator itself run —
//! simulated-cycles-per-wall-second per service backend — with the
//! wall-clock self-profiler attributing where the time goes.
//!
//! The sweep drives the scheduling [`Engine`] over backend
//! (`analytic` / `measured` / `cosim`) × workload scale under a single
//! FIFO policy, with the hierarchical profiler enabled. It is two
//! studies in one file, kept strictly apart by the repo's determinism
//! discipline:
//!
//! - the **cycle-domain report** (`results/throughput.json`) is a pure
//!   function of the seed: per-cell job accounting, makespan, p95 —
//!   CI runs the study twice and byte-compares;
//! - the **wall-clock sidecar** (`BENCH_throughput.json`, full runs
//!   only) carries simulated-cycles-per-wall-second per backend and the
//!   hottest profile sites — never byte-compared.
//!
//! Self-asserted claims:
//!
//! 1. the profile tree reconciles with end-to-end wall time: the root
//!    scope's total is within 10% of an independent `Instant` measure;
//! 2. the interpreter (`isa.interpret`) and scheduler
//!    (`sched.engine.run`) hot sites are live — nonzero calls and time;
//! 3. with profiling disabled (`profile::set_enabled(false)` — the
//!    per-scope fast path is a single branch), the cycle-domain report
//!    replays **byte-identically**, and no samples are recorded;
//! 4. every backend sustains a nonzero cycles-per-wall-second rate;
//! 5. a live daemon answers `GetStats` with SLO quantiles equal —
//!    field for field — to a direct [`FleetSlo`] summary of its fleet.
//!
//! ```text
//! cargo run --release -p mpsoc-bench --bin throughput_study \
//!     [-- --smoke] [-- --json out.json] \
//!     [-- --flamegraph out.folded] [-- --chrome out.trace.json]
//! ```
//!
//! `--flamegraph` writes collapsed stacks (`inferno` / `flamegraph.pl`
//! compatible); `--chrome` writes a `chrome://tracing` view of the
//! profile tree.

use std::path::PathBuf;
use std::time::Instant;

use mpsoc_bench::{json_arg, render_table, write_bench_sidecar, write_json};
use mpsoc_offload::Offloader;
use mpsoc_sched::{
    ArrivalPattern, Engine, FifoFirstFit, KernelId, ModelTable, ServiceBackend, Workload,
};
use mpsoc_serve::{
    prometheus_text, ClientScript, Daemon, Fleet, FleetConfig, FleetSlo, PlacementPolicy, Response,
};
use mpsoc_soc::SocConfig;
use mpsoc_telemetry::{profile, profile_chrome_trace_json, SiteTotal, ThroughputMeter};
use serde::{Deserialize, Serialize};

/// One deterministic `(backend, scale)` cell: cycle-domain accounting
/// only — nothing here may depend on wall time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct CycleRow {
    backend: String,
    jobs: u64,
    offloaded: u64,
    host_runs: u64,
    rejected: u64,
    deadline_misses: u64,
    makespan: u64,
    p95_latency: u64,
}

/// The deterministic artifact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct ThroughputReport {
    smoke: bool,
    rows: Vec<CycleRow>,
}

/// Wall-clock payload of `BENCH_throughput.json`.
#[derive(Debug, Serialize)]
struct ThroughputDetail {
    /// Simulated-cycles-per-wall-second per backend.
    rates: Vec<mpsoc_telemetry::ThroughputRow>,
    /// Hottest profile sites by self time.
    hot_sites: Vec<SiteTotal>,
}

const SEED: u64 = 0x7410_0C75;
const CLUSTERS: usize = 8;

/// `--flag <value>` CLI lookup.
fn arg_value(flag: &str) -> Option<PathBuf> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == flag {
            return args.next().map(Into::into);
        }
    }
    None
}

/// Runs one cell and returns its deterministic row plus the makespan
/// (the simulated-cycle count the throughput meter charges).
fn run_cell(
    table: &ModelTable,
    backend_name: &str,
    jobs_n: usize,
) -> Result<CycleRow, Box<dyn std::error::Error>> {
    let mut workload = Workload::balanced(
        jobs_n,
        SEED ^ jobs_n as u64,
        ArrivalPattern::Poisson {
            mean_interarrival: 1.0,
        },
    );
    let gap = workload.interarrival_for_load(table, CLUSTERS, 0.8);
    workload.arrivals = ArrivalPattern::Poisson {
        mean_interarrival: gap,
    };
    let jobs = workload.generate(table);
    let backend = match backend_name {
        "analytic" => ServiceBackend::analytic(table.clone()),
        "measured" => {
            ServiceBackend::measured(Offloader::new(SocConfig::with_clusters(CLUSTERS))?, SEED)
        }
        _ => {
            ServiceBackend::co_simulated(Offloader::new(SocConfig::with_clusters(CLUSTERS))?, SEED)
        }
    };
    let mut engine = Engine::new(table.clone(), CLUSTERS, backend);
    let report = engine.run(&jobs, &mut FifoFirstFit)?;
    let m = report.metrics;
    Ok(CycleRow {
        backend: backend_name.to_owned(),
        jobs: m.jobs as u64,
        offloaded: m.offloaded as u64,
        host_runs: m.host_runs as u64,
        rejected: m.rejected as u64,
        deadline_misses: m.deadline_misses as u64,
        makespan: m.makespan,
        p95_latency: m.p95_latency,
    })
}

/// The full backend × scale sweep. The meter charges each cell's
/// simulated makespan against its wall time, keyed by backend.
fn run_sweep(
    table: &ModelTable,
    cells: &[(&str, Vec<usize>)],
    meter: &mut ThroughputMeter,
) -> Result<Vec<CycleRow>, Box<dyn std::error::Error>> {
    let mut rows = Vec::new();
    for &(backend, ref scales) in cells {
        for &jobs_n in scales {
            let row = meter.measure(backend, || {
                let row = run_cell(table, backend, jobs_n);
                let cycles = row.as_ref().map(|r| r.makespan).unwrap_or(0);
                (cycles, row)
            })?;
            rows.push(row);
        }
    }
    Ok(rows)
}

/// Claim 5: a live daemon's `GetStats` answer equals the direct
/// [`FleetSlo`] summary of its fleet, quantiles included.
fn assert_daemon_stats_exact() -> Result<(), Box<dyn std::error::Error>> {
    let fleet = Fleet::analytic(
        FleetConfig {
            shards: 2,
            clusters_per_shard: 4,
            queue_limit: 8,
            placement: PlacementPolicy::LeastLoaded,
            steal: true,
            redirect_budget: 0,
            failover: false,
        },
        &ModelTable::paper_defaults(),
    );
    let mut daemon = Daemon::new(fleet);
    let mut jobs = ClientScript::new();
    for i in 0..40u64 {
        // Mostly servable traffic with a few infeasible deadlines, so
        // the report carries reject-reason counters too.
        let deadline = if i % 9 == 0 { 300 } else { 60_000 };
        jobs.submit_at(i * 70, i, KernelId::Daxpy, 1024 << (i % 3), deadline);
    }
    daemon.run(&[jobs])?;
    let mut poll = ClientScript::new();
    poll.poll_stats_at(5_000);
    let logs = daemon.run(&[poll])?;
    let responses = logs[0].responses()?;
    let Some(Response::Stats { report }) = responses.first() else {
        return Err("daemon did not answer GetStats".into());
    };
    let direct = FleetSlo::from_fleet(daemon.fleet());
    assert_eq!(
        report.slo, direct,
        "GetStats must match a direct FleetSlo summary exactly"
    );
    assert_eq!(report.slo.p50, direct.p50, "p50 must match exactly");
    assert_eq!(report.slo.p99, direct.p99, "p99 must match exactly");
    assert!(
        report
            .reject_reasons
            .iter()
            .any(|(k, v)| k == "infeasible" && *v > 0),
        "the infeasible submissions must show in the reason breakdown"
    );
    println!(
        "daemon GetStats: p50={:?} p99={:?} attainment={:.3} — matches FleetSlo exactly",
        report.slo.p50, report.slo.p99, report.slo.attainment
    );
    // The same report, as a scraper would see it.
    let text = prometheus_text(report, &[]);
    for line in text.lines().filter(|l| !l.starts_with('#')).take(3) {
        println!("  {line}");
    }
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let cells: Vec<(&str, Vec<usize>)> = if smoke {
        vec![
            ("analytic", vec![300, 900]),
            ("measured", vec![20, 50]),
            ("cosim", vec![15, 35]),
        ]
    } else {
        vec![
            ("analytic", vec![20_000, 50_000]),
            ("measured", vec![120, 240]),
            ("cosim", vec![80, 160]),
        ]
    };
    let table = ModelTable::paper_defaults();

    // Profiled pass: the deterministic sweep under the profiler, with
    // an independent wall-clock measure around the same region.
    profile::set_enabled(true);
    profile::reset();
    let mut meter = ThroughputMeter::new();
    let started = Instant::now();
    let rows = {
        let _root = profile::scope("throughput_study.run");
        run_sweep(&table, &cells, &mut meter)?
    };
    let wall = started.elapsed();
    let prof = profile::snapshot();

    // Claim 1: the profile tree reconciles with wall time within 10%.
    let wall_ns = wall.as_nanos() as u64;
    let prof_ns = prof.total_ns();
    let drift = (wall_ns as f64 - prof_ns as f64).abs() / wall_ns as f64;
    assert!(
        drift <= 0.10,
        "profile total {prof_ns}ns vs wall {wall_ns}ns drifts {:.1}% (> 10%)",
        drift * 100.0
    );

    // Claim 2: the wired hot sites are live.
    let sites = prof.site_totals();
    let site = |name: &str| sites.iter().find(|s| s.name == name);
    for required in ["isa.interpret", "sched.engine.run"] {
        let s =
            site(required).unwrap_or_else(|| panic!("required profile site {required} missing"));
        assert!(
            s.calls > 0 && s.total_ns > 0,
            "site {required} must be live, got {s:?}"
        );
    }

    println!(
        "profiled sweep: {} cells, wall {:.2}s, profile drift {:.2}%",
        rows.len(),
        wall.as_secs_f64(),
        drift * 100.0
    );
    println!("top-3 hot sites (by self time):");
    for s in sites.iter().take(3) {
        println!(
            "  {:<24} {:>10} calls  self {:>8.1}ms  total {:>8.1}ms",
            s.name,
            s.calls,
            s.self_ns as f64 / 1e6,
            s.total_ns as f64 / 1e6
        );
    }

    // Claim 3: profiling off — a single disabled branch per scope —
    // replays the cycle-domain report byte-identically and records
    // nothing.
    profile::set_enabled(false);
    profile::reset();
    let mut silent_meter = ThroughputMeter::new();
    let rows_off = run_sweep(&table, &cells, &mut silent_meter)?;
    assert_eq!(
        serde_json::to_string(&rows)?,
        serde_json::to_string(&rows_off)?,
        "cycle-domain report must be byte-identical with profiling off"
    );
    assert!(
        profile::snapshot().roots.is_empty(),
        "disabled profiler must record no samples"
    );
    profile::set_enabled(true);
    println!("profiling-off replay: byte-identical ✓");

    // Claim 4: every backend sustained a nonzero simulation rate.
    let rates = meter.report();
    for backend in ["analytic", "cosim", "measured"] {
        let r = rates
            .iter()
            .find(|r| r.component == backend)
            .unwrap_or_else(|| panic!("no throughput row for {backend}"));
        assert!(
            r.cycles_per_wall_second > 0.0,
            "{backend} must sustain a nonzero rate"
        );
    }
    println!(
        "\n{}",
        render_table(
            &["backend", "sim cycles", "wall s", "cycles/s"],
            &rates
                .iter()
                .map(|r| vec![
                    r.component.clone(),
                    r.sim_cycles.to_string(),
                    format!("{:.3}", r.wall_seconds),
                    format!("{:.3e}", r.cycles_per_wall_second),
                ])
                .collect::<Vec<_>>(),
        )
    );

    // Claim 5: live daemon stats.
    assert_daemon_stats_exact()?;

    // Artifacts. The deterministic report first.
    let report = ThroughputReport { smoke, rows };
    let path = json_arg().unwrap_or_else(|| "results/throughput.json".into());
    write_json(&path, &report)?;
    println!("\nwrote {}", path.display());

    if !smoke {
        let total_jobs: u64 = report.rows.iter().map(|r| r.jobs).sum();
        let detail = ThroughputDetail {
            rates,
            hot_sites: sites.into_iter().take(10).collect(),
        };
        let bench = write_bench_sidecar("throughput", wall.as_secs_f64(), total_jobs, detail)?;
        println!("wrote {}", bench.display());
    }

    // Optional profile exports.
    if let Some(flame) = arg_value("--flamegraph") {
        std::fs::write(&flame, prof.collapsed())?;
        println!("wrote {} (collapsed stacks)", flame.display());
    }
    if let Some(chrome) = arg_value("--chrome") {
        std::fs::write(&chrome, profile_chrome_trace_json(&prof))?;
        println!("wrote {} (chrome trace)", chrome.display());
    }
    Ok(())
}
