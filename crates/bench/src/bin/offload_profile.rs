//! Offload profiler: runs one offload with typed-event telemetry on,
//! prints the per-phase cycle attribution and its residuals against the
//! paper's Eq. 1, and exports a Perfetto-loadable Chrome trace:
//!
//! ```text
//! cargo run --release -p mpsoc-bench --bin offload_profile -- \
//!     [--kernel daxpy|axpby|scale|vecadd|memset|dot|sum] [--n 1024] [--m 8] \
//!     [--clusters 32] [--seed 42] [--trace out.trace.json] [--json out.json]
//! ```
//!
//! Open the trace file in <https://ui.perfetto.dev> (or
//! `chrome://tracing`): one track per hardware unit — host, per-cluster
//! DMA engines and worker cores, the credit unit — with dispatch, DMA,
//! compute and synchronization spans in cycles.
//!
//! The binary re-validates its own trace output against the Chrome
//! trace-event schema and checks that the phase attribution sums exactly
//! to the measured end-to-end runtime; it exits non-zero if either
//! fails, so CI can use it as a smoke test.

use std::path::PathBuf;

use mpsoc_bench::write_json;
use mpsoc_kernels::{Axpby, Daxpy, Dot, Kernel, Memset, Scale, Sum, VecAdd};
use mpsoc_offload::{OffloadStrategy, Offloader};
use mpsoc_sim::rng::SplitMix64;
use mpsoc_soc::SocConfig;
use mpsoc_telemetry::{chrome_trace_json, validate_chrome_trace, ModelTerms, ResidualAudit};
use serde::Serialize;

/// The JSON artifact: phase attribution plus the Eq. 1 residual audit.
#[derive(Serialize)]
struct Profile {
    kernel: String,
    n: u64,
    m: usize,
    total_cycles: u64,
    phase_breakdown: mpsoc_telemetry::PhaseBreakdown,
    residuals: ResidualAudit,
    trace_events: usize,
    trace_spans: usize,
}

struct Args {
    kernel: String,
    n: u64,
    m: usize,
    clusters: usize,
    seed: u64,
    trace: PathBuf,
    json: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        kernel: "daxpy".to_owned(),
        n: 1024,
        m: 8,
        clusters: 32,
        seed: 0xC0FFEE,
        trace: PathBuf::from("target/offload_profile.trace.json"),
        json: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match flag.as_str() {
            "--kernel" => args.kernel = value("--kernel")?,
            "--n" => args.n = value("--n")?.parse().map_err(|e| format!("--n: {e}"))?,
            "--m" => args.m = value("--m")?.parse().map_err(|e| format!("--m: {e}"))?,
            "--clusters" => {
                args.clusters = value("--clusters")?
                    .parse()
                    .map_err(|e| format!("--clusters: {e}"))?
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--trace" => args.trace = value("--trace")?.into(),
            "--json" => args.json = Some(value("--json")?.into()),
            other => {
                return Err(format!(
                    "unknown flag '{other}' (see the bin's doc comment)"
                ))
            }
        }
    }
    Ok(args)
}

fn kernel_by_name(name: &str) -> Result<Box<dyn Kernel>, String> {
    Ok(match name {
        "daxpy" => Box::new(Daxpy::new(2.0)),
        "axpby" => Box::new(Axpby::new(1.5, -0.5)),
        "scale" => Box::new(Scale::new(3.0)),
        "vecadd" => Box::new(VecAdd::new()),
        "memset" => Box::new(Memset::new(1.0)),
        "dot" => Box::new(Dot::new()),
        "sum" => Box::new(Sum::new()),
        other => return Err(format!("unknown kernel '{other}'")),
    })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = parse_args().map_err(|e| format!("argument error: {e}"))?;
    let kernel = kernel_by_name(&args.kernel)?;

    let mut rng = SplitMix64::new(args.seed);
    let mut x = vec![0.0; (args.n * kernel.x_words_per_elem()) as usize];
    let mut y = vec![0.0; args.n as usize];
    rng.fill_f64(&mut x, -4.0, 4.0);
    rng.fill_f64(&mut y, -4.0, 4.0);

    let mut offloader = Offloader::new(SocConfig::with_clusters(args.clusters))?;
    offloader.soc_mut().enable_telemetry(1 << 16);
    let run = offloader.offload(kernel.as_ref(), &x, &y, args.m, OffloadStrategy::extended())?;
    let verify = run.verify(kernel.as_ref(), &x, &y);

    let pb = run.outcome.phase_breakdown;
    let total = run.cycles();
    println!(
        "{} | N={} M={} | {} cycles end-to-end",
        kernel.name(),
        args.n,
        args.m,
        total
    );
    println!(
        "phases  : dispatch {} | dma-in {} | compute {} | dma-out {} | sync {} (sum {})",
        pb.dispatch,
        pb.dma_in,
        pb.compute,
        pb.dma_out,
        pb.sync,
        pb.total()
    );
    if pb.total() != total {
        return Err(format!(
            "phase attribution lost cycles: phases sum to {} but the run took {total}",
            pb.total()
        )
        .into());
    }

    let audit = ResidualAudit::new(&pb, args.n, args.m as u64, &ModelTerms::paper());
    print!("{}", audit.render());

    // Export the Chrome trace and schema-check what was written.
    let json = chrome_trace_json(offloader.soc().telemetry());
    if let Some(parent) = args.trace.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(&args.trace, &json)?;
    let written = std::fs::read_to_string(&args.trace)?;
    let summary = validate_chrome_trace(&written)
        .map_err(|e| format!("emitted trace fails schema validation: {e}"))?;
    println!(
        "trace   : {} events, {} spans, {} tracks -> {} (load in https://ui.perfetto.dev)",
        summary.events,
        summary.spans,
        summary.tracks,
        args.trace.display()
    );
    println!("verify  : {verify}");

    if let Some(path) = &args.json {
        let profile = Profile {
            kernel: kernel.name().to_owned(),
            n: args.n,
            m: args.m,
            total_cycles: total,
            phase_breakdown: pb,
            residuals: audit,
            trace_events: summary.events,
            trace_spans: summary.spans,
        };
        write_json(path, &profile)?;
        println!("json    : {}", path.display());
    }
    if !verify.passed() {
        return Err(format!("verification failed: {verify}").into());
    }
    Ok(())
}
