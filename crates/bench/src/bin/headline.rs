//! Regenerates the **headline result**: the speedup improvement of the
//! co-designed offload on the 1024-element DAXPY (paper: 47.9% at 32
//! clusters, a gap of more than 300 cycles).
//!
//! ```text
//! cargo run --release -p mpsoc-bench --bin headline [-- --json out.json]
//! ```

use mpsoc_bench::{json_arg, write_json, Harness};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut harness = Harness::new()?;
    let h = harness.headline()?;

    println!("Headline — DAXPY N={}, M={}:", h.n, h.m);
    println!("  baseline : {:>6} cycles", h.baseline);
    println!("  extended : {:>6} cycles", h.extended);
    println!("  gap      : {:>6} cycles   (paper: > 300)", h.gap_cycles);
    println!(
        "  speedup improvement: {:.1}%   (paper: 47.9%)",
        h.improvement_pct
    );

    if let Some(path) = json_arg() {
        write_json(&path, &h)?;
        println!("\nwrote {}", path.display());
    }
    Ok(())
}
