//! Typed, serializable experiment results.

use mpsoc_offload::RuntimeModel;
use serde::{Deserialize, Serialize};

/// One row of Fig. 1 (left): runtime of the 1024-element DAXPY vs
/// cluster count, for both runtimes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig1LeftRow {
    /// Clusters employed.
    pub m: usize,
    /// Baseline runtime (cycles == ns at 1 GHz).
    pub baseline: u64,
    /// Extended (multicast + credit counter) runtime.
    pub extended: u64,
}

impl Fig1LeftRow {
    /// Cycles saved by the extensions.
    pub fn gap(&self) -> i64 {
        self.baseline as i64 - self.extended as i64
    }
}

/// One cell of Fig. 1 (right): speedup of the extensions over the
/// baseline at one `(N, M)` point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig1RightRow {
    /// Problem size.
    pub n: u64,
    /// Clusters employed.
    pub m: usize,
    /// Baseline runtime.
    pub baseline: u64,
    /// Extended runtime.
    pub extended: u64,
    /// `baseline / extended`.
    pub speedup: f64,
}

/// The headline result: maximum speedup improvement on the 1024-element
/// DAXPY (the paper reports 47.9% at M=32).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Headline {
    /// Problem size (1024 in the paper).
    pub n: u64,
    /// Clusters (32 in the paper).
    pub m: usize,
    /// Baseline runtime.
    pub baseline: u64,
    /// Extended runtime.
    pub extended: u64,
    /// Speedup improvement in percent (`(baseline/extended − 1)·100`).
    pub improvement_pct: f64,
    /// Cycle gap (the paper reports "more than 300 cycles" at M=32).
    pub gap_cycles: i64,
}

/// Result of fitting Eq. 1 to measured extended-runtime samples.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModelFitResult {
    /// Coefficients fitted to this simulator's measurements.
    pub fitted: RuntimeModel,
    /// The paper's published coefficients, for comparison.
    pub paper: RuntimeModel,
    /// Coefficient of determination of the fit.
    pub r_squared: f64,
    /// Largest absolute percentage error over the fit set.
    pub max_abs_pct_err: f64,
    /// Samples fitted.
    pub samples: usize,
}

/// One row of the Eq. 2 validation table: MAPE of the fitted model for
/// one problem size, over the tested cluster counts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MapeRow {
    /// Problem size.
    pub n: u64,
    /// MAPE of the fitted model, percent (paper: < 1%).
    pub mape_pct: f64,
    /// Cluster counts averaged over.
    pub points: usize,
}

/// One row of the Eq. 3 decision-validation table.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DecisionRow {
    /// Problem size.
    pub n: u64,
    /// Deadline in cycles.
    pub t_max: f64,
    /// `M_min` from the model (Eq. 3), `None` if infeasible.
    pub m_min: Option<u64>,
    /// Simulated runtime at `M_min` (extended runtime).
    pub simulated_at_m_min: Option<u64>,
    /// Simulated runtime at `M_min − 1` (must miss the deadline).
    pub simulated_below: Option<u64>,
    /// Whether the simulation confirms the decision (deadline met at
    /// `M_min`, within model tolerance, and missed at `M_min − 1`).
    pub confirmed: bool,
}

/// One row of the dispatch/sync ablation at fixed N.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AblationRow {
    /// Strategy label (`dispatch+sync`).
    pub strategy: String,
    /// Clusters employed.
    pub m: usize,
    /// Measured runtime.
    pub cycles: u64,
}

/// One row of the kernel-zoo model-generality sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelSweepRow {
    /// Kernel name.
    pub kernel: String,
    /// Fitted Eq. 1-form coefficients for this kernel.
    pub fitted: RuntimeModel,
    /// R² of the fit.
    pub r_squared: f64,
    /// MAPE of the fitted model over the validation grid, percent.
    pub mape_pct: f64,
    /// The four-term extension (adds a `c_host·M` term), which restores
    /// sub-1% MAPE for reduce kernels whose host-side combine is linear
    /// in `M`.
    pub extended: mpsoc_offload::ExtendedModel,
    /// MAPE of the extended model over the validation grid, percent.
    pub mape_extended_pct: f64,
    /// Whether every offload in the sweep verified against the golden
    /// reference.
    pub all_verified: bool,
}

/// One row of the offload/host break-even analysis.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BreakEvenRow {
    /// Clusters employed.
    pub m: usize,
    /// Smallest problem size at which offloading beats host execution
    /// (from the fitted model).
    pub break_even_n: u64,
    /// Simulated accelerator runtime at the break-even size.
    pub accel_cycles: u64,
    /// *Simulated* host-execution runtime at the break-even size (the
    /// CVA6-class scalar pipeline running the same kernel).
    pub host_cycles: f64,
}

/// One row of the energy sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyRow {
    /// Strategy label.
    pub strategy: String,
    /// Clusters employed.
    pub m: usize,
    /// Runtime in cycles.
    pub cycles: u64,
    /// Total energy estimate in picojoules.
    pub total_pj: f64,
    /// Idle/leakage share in picojoules.
    pub idle_pj: f64,
    /// Dispatch/synchronization share in picojoules.
    pub sync_pj: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_gap() {
        let row = Fig1LeftRow {
            m: 32,
            baseline: 945,
            extended: 639,
        };
        assert_eq!(row.gap(), 306);
    }

    #[test]
    fn rows_serialize() {
        let row = MapeRow {
            n: 256,
            mape_pct: 0.4,
            points: 6,
        };
        let json = serde_json::to_string(&row).unwrap();
        assert!(json.contains("256"));
        let back: MapeRow = serde_json::from_str(&json).unwrap();
        assert_eq!(back, row);
    }
}
