//! The experiment harness: owns one simulated SoC and runs the paper's
//! experiments on it.

use mpsoc_kernels::{Axpby, Daxpy, Dot, Gemv, Kernel, Memset, Scale, Sum, VecAdd};
use mpsoc_offload::{
    decision::min_clusters, mape, OffloadError, OffloadStrategy, Offloader, RuntimeModel, Sample,
};
use mpsoc_sim::rng::SplitMix64;
use mpsoc_soc::SocConfig;

use crate::results::{
    AblationRow, DecisionRow, Fig1LeftRow, Fig1RightRow, Headline, KernelSweepRow, MapeRow,
    ModelFitResult,
};
use crate::{FIG1_RIGHT_N, FIT_N, MAPE_N, PAPER_M};

/// Generates deterministic operand vectors for a run.
fn operands(n: u64, seed: u64) -> (Vec<f64>, Vec<f64>) {
    let mut rng = SplitMix64::new(seed);
    let mut x = vec![0.0; n as usize];
    let mut y = vec![0.0; n as usize];
    rng.fill_f64(&mut x, -4.0, 4.0);
    rng.fill_f64(&mut y, -4.0, 4.0);
    (x, y)
}

/// Runs the paper's experiments on one simulated Manticore-class SoC.
///
/// # Example
///
/// ```
/// use mpsoc_bench::Harness;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut harness = Harness::new()?;
/// let headline = harness.headline()?;
/// assert!(headline.improvement_pct > 30.0, "the co-design must pay off");
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Harness {
    offloader: Offloader,
    seed: u64,
}

impl Harness {
    /// Builds a harness on the calibrated 32-cluster Manticore preset.
    ///
    /// # Errors
    ///
    /// Propagates SoC construction failures.
    pub fn new() -> Result<Self, OffloadError> {
        Self::with_config(SocConfig::manticore())
    }

    /// Builds a harness on an explicit SoC configuration.
    ///
    /// # Errors
    ///
    /// Propagates SoC construction failures.
    pub fn with_config(config: SocConfig) -> Result<Self, OffloadError> {
        Ok(Harness {
            offloader: Offloader::new(config)?,
            seed: 0xDA7E_2024,
        })
    }

    /// The underlying offloader.
    pub fn offloader_mut(&mut self) -> &mut Offloader {
        &mut self.offloader
    }

    /// Measures one DAXPY offload runtime in cycles.
    ///
    /// # Errors
    ///
    /// Propagates offload failures.
    pub fn measure_daxpy(
        &mut self,
        n: u64,
        m: usize,
        strategy: OffloadStrategy,
    ) -> Result<u64, OffloadError> {
        let kernel = Daxpy::new(2.0);
        let (x, y) = operands(n, self.seed ^ n);
        let run = self.offloader.offload(&kernel, &x, &y, m, strategy)?;
        debug_assert!(run.verify(&kernel, &x, &y).passed());
        Ok(run.cycles())
    }

    /// **Fig. 1 (left)**: runtime of a 1024-element DAXPY for `M ∈
    /// {1,2,4,8,16,32}`, baseline vs extended.
    ///
    /// # Errors
    ///
    /// Propagates offload failures.
    pub fn fig1_left(&mut self) -> Result<Vec<Fig1LeftRow>, OffloadError> {
        let n = 1024;
        PAPER_M
            .iter()
            .map(|&m| {
                Ok(Fig1LeftRow {
                    m,
                    baseline: self.measure_daxpy(n, m, OffloadStrategy::baseline())?,
                    extended: self.measure_daxpy(n, m, OffloadStrategy::extended())?,
                })
            })
            .collect()
    }

    /// **Fig. 1 (right)**: speedup of the extensions over the baseline
    /// for `N ∈ {1024, 2048, 4096, 8192}` × `M ∈ {1,2,4,8,16,32}`.
    ///
    /// # Errors
    ///
    /// Propagates offload failures.
    pub fn fig1_right(&mut self) -> Result<Vec<Fig1RightRow>, OffloadError> {
        let mut rows = Vec::new();
        for &n in &FIG1_RIGHT_N {
            for &m in &PAPER_M {
                let baseline = self.measure_daxpy(n, m, OffloadStrategy::baseline())?;
                let extended = self.measure_daxpy(n, m, OffloadStrategy::extended())?;
                rows.push(Fig1RightRow {
                    n,
                    m,
                    baseline,
                    extended,
                    speedup: baseline as f64 / extended as f64,
                });
            }
        }
        Ok(rows)
    }

    /// **Headline**: the maximum improvement on the 1024-element DAXPY
    /// (paper: 47.9% at M=32, a gap of more than 300 cycles).
    ///
    /// # Errors
    ///
    /// Propagates offload failures.
    pub fn headline(&mut self) -> Result<Headline, OffloadError> {
        let (n, m) = (1024, 32);
        let baseline = self.measure_daxpy(n, m, OffloadStrategy::baseline())?;
        let extended = self.measure_daxpy(n, m, OffloadStrategy::extended())?;
        Ok(Headline {
            n,
            m,
            baseline,
            extended,
            improvement_pct: (baseline as f64 / extended as f64 - 1.0) * 100.0,
            gap_cycles: baseline as i64 - extended as i64,
        })
    }

    /// Collects extended-runtime samples over a grid, for model fitting.
    ///
    /// # Errors
    ///
    /// Propagates offload failures.
    pub fn collect_samples(
        &mut self,
        ns: &[u64],
        ms: &[usize],
    ) -> Result<Vec<Sample>, OffloadError> {
        let mut samples = Vec::with_capacity(ns.len() * ms.len());
        for &n in ns {
            for &m in ms {
                let cycles = self.measure_daxpy(n, m, OffloadStrategy::extended())?;
                samples.push(Sample {
                    m: m as u64,
                    n,
                    cycles: cycles as f64,
                });
            }
        }
        Ok(samples)
    }

    /// **Eq. 1**: fits the runtime model to measurements on the training
    /// grid (problem sizes disjoint from the validation grid).
    ///
    /// # Errors
    ///
    /// Propagates offload and fit failures.
    pub fn model_fit(&mut self) -> Result<ModelFitResult, Box<dyn std::error::Error>> {
        let samples = self.collect_samples(&FIT_N, &PAPER_M)?;
        let report = RuntimeModel::fit(&samples)?;
        Ok(ModelFitResult {
            fitted: report.model,
            paper: RuntimeModel::paper(),
            r_squared: report.r_squared,
            max_abs_pct_err: report.max_abs_pct_err,
            samples: report.samples,
        })
    }

    /// **Eq. 2**: validates the fitted model on the paper's grid
    /// (`N ∈ {256, 512, 768, 1024}`, `M ∈ {1,2,4,8,16,32}`), reporting
    /// MAPE(N) — the paper observes < 1% everywhere.
    ///
    /// Returns the fitted model and one row per problem size.
    ///
    /// # Errors
    ///
    /// Propagates offload and fit failures.
    pub fn mape_table(
        &mut self,
    ) -> Result<(RuntimeModel, Vec<MapeRow>), Box<dyn std::error::Error>> {
        let fit = self.model_fit()?;
        let mut rows = Vec::new();
        for &n in &MAPE_N {
            let samples = self.collect_samples(&[n], &PAPER_M)?;
            rows.push(MapeRow {
                n,
                mape_pct: mape(&fit.fitted, &samples),
                points: samples.len(),
            });
        }
        Ok((fit.fitted, rows))
    }

    /// **Eq. 3**: solves the offload decision for a grid of deadlines and
    /// validates each decision against simulation: the deadline must be
    /// met at `M_min` (within `tolerance_pct` of model error) and missed
    /// at `M_min − 1`.
    ///
    /// # Errors
    ///
    /// Propagates offload and fit failures.
    pub fn decision_table(
        &mut self,
        tolerance_pct: f64,
    ) -> Result<(RuntimeModel, Vec<DecisionRow>), Box<dyn std::error::Error>> {
        let fit = self.model_fit()?;
        let model = fit.fitted;
        let mut rows = Vec::new();
        for &n in &[256u64, 1024, 4096] {
            let t1 = model.predict(1, n);
            let t32 = model.predict(32, n);
            // Deadlines spanning infeasible → trivially feasible.
            let deadlines = [
                t32 * 0.9,
                t32 * 1.002,
                (t32 + t1) / 2.0,
                t1 * 0.95,
                t1 * 1.05,
            ];
            for &t_max in &deadlines {
                let m_min = min_clusters(&model, n, t_max).filter(|&m| m <= 32);
                let mut simulated_at_m_min: Option<u64> = None;
                let mut simulated_below = None;
                let mut confirmed = true;
                if let Some(m) = m_min {
                    let at = self.measure_daxpy(n, m as usize, OffloadStrategy::extended())?;
                    simulated_at_m_min = Some(at);
                    // Deadline met within the model's tolerance.
                    confirmed &= (at as f64) <= t_max * (1.0 + tolerance_pct / 100.0);
                    if m > 1 {
                        let below =
                            self.measure_daxpy(n, (m - 1) as usize, OffloadStrategy::extended())?;
                        simulated_below = Some(below);
                        confirmed &= (below as f64) > t_max * (1.0 - tolerance_pct / 100.0);
                    }
                } else {
                    // Model says infeasible (or needs > 32 clusters): even
                    // the full machine must miss the deadline.
                    let full = self.measure_daxpy(n, 32, OffloadStrategy::extended())?;
                    confirmed = (full as f64) > t_max * (1.0 - tolerance_pct / 100.0);
                    simulated_below = Some(full);
                }
                rows.push(DecisionRow {
                    n,
                    t_max,
                    m_min,
                    simulated_at_m_min,
                    simulated_below,
                    confirmed,
                });
            }
        }
        Ok((model, rows))
    }

    /// **Ablation**: each co-design ingredient in isolation
    /// (dispatch × sync grid) on the 1024-element DAXPY.
    ///
    /// # Errors
    ///
    /// Propagates offload failures.
    pub fn ablation(&mut self) -> Result<Vec<AblationRow>, OffloadError> {
        let mut rows = Vec::new();
        for strategy in OffloadStrategy::all() {
            for &m in &PAPER_M {
                let cycles = self.measure_daxpy(1024, m, strategy)?;
                rows.push(AblationRow {
                    strategy: strategy.to_string(),
                    m,
                    cycles,
                });
            }
        }
        Ok(rows)
    }

    /// **Break-even analysis** (the paper's introduction: "determining if
    /// a portion of the workload can benefit or not from offloading"):
    /// fits the accelerator model, then computes and simulates the
    /// smallest problem size at which offloading beats host execution.
    ///
    /// # Errors
    ///
    /// Propagates offload and fit failures.
    pub fn breakeven(
        &mut self,
    ) -> Result<Vec<crate::results::BreakEvenRow>, Box<dyn std::error::Error>> {
        use mpsoc_offload::decision::{break_even_n, HostModel};
        let fit = self.model_fit()?;

        // Fit the host model from two *simulated* host executions of the
        // same kernel on the CVA6-class scalar pipeline.
        let kernel = Daxpy::new(2.0);
        let host_cycles_at = |h: &mut Harness, n: u64| -> Result<u64, OffloadError> {
            let (x, y) = operands(n, h.seed ^ n ^ 0xB0);
            let (cycles, _) = h.offloader.run_on_host(&kernel, &x, &y)?;
            Ok(cycles)
        };
        let (n_a, n_b) = (256u64, 2048u64);
        let t_a = host_cycles_at(self, n_a)? as f64;
        let t_b = host_cycles_at(self, n_b)? as f64;
        let c_elem = (t_b - t_a) / (n_b - n_a) as f64;
        let host = HostModel {
            c0: t_a - c_elem * n_a as f64,
            c_elem,
        };

        let mut rows = Vec::new();
        for &m in &PAPER_M {
            let n_star = break_even_n(&host, &fit.fitted, m as u64)
                .expect("the calibrated accelerator eventually wins");
            let accel_cycles = self.measure_daxpy(n_star, m, OffloadStrategy::extended())?;
            let host_measured = host_cycles_at(self, n_star)?;
            rows.push(crate::results::BreakEvenRow {
                m,
                break_even_n: n_star,
                accel_cycles,
                host_cycles: host_measured as f64,
            });
        }
        Ok(rows)
    }

    /// **Energy sweep**: runtime and energy estimate of the 1024-element
    /// DAXPY across strategies and cluster counts (the paper motivates
    /// the co-design by energy as well as runtime).
    ///
    /// # Errors
    ///
    /// Propagates offload failures.
    pub fn energy_sweep(&mut self) -> Result<Vec<crate::results::EnergyRow>, OffloadError> {
        let kernel = Daxpy::new(2.0);
        let n = 1024u64;
        let (x, y) = operands(n, self.seed ^ n);
        let mut rows = Vec::new();
        for strategy in [OffloadStrategy::baseline(), OffloadStrategy::extended()] {
            for &m in &PAPER_M {
                let run = self.offloader.offload(&kernel, &x, &y, m, strategy)?;
                rows.push(crate::results::EnergyRow {
                    strategy: strategy.to_string(),
                    m,
                    cycles: run.cycles(),
                    total_pj: run.outcome.energy.total_pj(),
                    idle_pj: run.outcome.energy.idle_pj,
                    sync_pj: run.outcome.energy.sync_pj,
                });
            }
        }
        Ok(rows)
    }

    /// **Kernel sweep**: refits the Eq. 1-form model for every kernel in
    /// the zoo and verifies every offload, demonstrating the model's
    /// generality beyond DAXPY.
    ///
    /// # Errors
    ///
    /// Propagates offload and fit failures.
    pub fn kernel_sweep(&mut self) -> Result<Vec<KernelSweepRow>, Box<dyn std::error::Error>> {
        let kernels: Vec<Box<dyn Kernel>> = vec![
            Box::new(Daxpy::new(2.0)),
            Box::new(Axpby::new(1.5, -0.5)),
            Box::new(Scale::new(3.0)),
            Box::new(VecAdd::new()),
            Box::new(Memset::new(1.25)),
            Box::new(Dot::new()),
            Box::new(Sum::new()),
            Box::new(Gemv::new(vec![0.5, -1.0, 2.0, 0.25])),
        ];
        let fit_ns = [384u64, 640, 1280, 2560];
        let val_ns = [512u64, 1024, 2048];
        let mut rows = Vec::new();
        for kernel in &kernels {
            let mut all_verified = true;
            let mut measure = |h: &mut Harness, n: u64, m: usize| -> Result<f64, OffloadError> {
                let seed = h.seed ^ n ^ (m as u64) << 32;
                let mut rng = SplitMix64::new(seed);
                let mut x = vec![0.0; (n * kernel.x_words_per_elem()) as usize];
                let mut y = vec![0.0; n as usize];
                rng.fill_f64(&mut x, -4.0, 4.0);
                rng.fill_f64(&mut y, -4.0, 4.0);
                let run =
                    h.offloader
                        .offload(kernel.as_ref(), &x, &y, m, OffloadStrategy::extended())?;
                if !run.verify(kernel.as_ref(), &x, &y).passed() {
                    all_verified = false;
                }
                Ok(run.cycles() as f64)
            };
            let mut fit_samples = Vec::new();
            for &n in &fit_ns {
                for &m in &PAPER_M {
                    fit_samples.push(Sample {
                        m: m as u64,
                        n,
                        cycles: measure(self, n, m)?,
                    });
                }
            }
            let report = RuntimeModel::fit(&fit_samples)?;
            let extended = mpsoc_offload::ExtendedModel::fit(&fit_samples)?;
            let mut val_samples = Vec::new();
            for &n in &val_ns {
                for &m in &PAPER_M {
                    val_samples.push(Sample {
                        m: m as u64,
                        n,
                        cycles: measure(self, n, m)?,
                    });
                }
            }
            rows.push(KernelSweepRow {
                kernel: kernel.name().to_owned(),
                fitted: report.model,
                r_squared: report.r_squared,
                mape_pct: mape(&report.model, &val_samples),
                extended: extended.model,
                mape_extended_pct: mape(&extended.model, &val_samples),
                all_verified,
            });
        }
        Ok(rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small-geometry harness so unit tests stay fast; full-size runs
    /// are exercised by the CLI binaries and integration tests.
    fn small() -> Harness {
        Harness::with_config(SocConfig::with_clusters(8)).unwrap()
    }

    #[test]
    fn measure_daxpy_is_deterministic() {
        let mut h = small();
        let a = h
            .measure_daxpy(512, 8, OffloadStrategy::extended())
            .unwrap();
        let b = h
            .measure_daxpy(512, 8, OffloadStrategy::extended())
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn collect_samples_covers_grid() {
        let mut h = small();
        let samples = h.collect_samples(&[256, 512], &[1, 2, 4]).unwrap();
        assert_eq!(samples.len(), 6);
        assert!(samples.iter().all(|s| s.cycles > 0.0));
    }

    #[test]
    fn operand_generation_is_seeded() {
        let (x1, y1) = operands(64, 42);
        let (x2, y2) = operands(64, 42);
        assert_eq!(x1, x2);
        assert_eq!(y1, y2);
        let (x3, _) = operands(64, 43);
        assert_ne!(x1, x3);
    }
}
