//! # mpsoc-bench
//!
//! Experiment harness regenerating **every table and figure** of
//! *"Optimizing Offload Performance in Heterogeneous MPSoCs"* (DATE 2024)
//! on the `mpsoc-offload` simulator. Each experiment has
//!
//! - a programmatic runner (this library) returning typed, serializable
//!   results,
//! - a CLI binary (`cargo run -p mpsoc-bench --bin <experiment>`)
//!   printing the paper-style rows and optionally writing JSON,
//! - a Criterion bench target (`cargo bench -p mpsoc-bench`).
//!
//! | Experiment | Paper artifact | Runner |
//! |---|---|---|
//! | `fig1_left` | Fig. 1 (left): DAXPY-1024 runtime vs clusters, baseline vs extended | [`Harness::fig1_left`] |
//! | `fig1_right` | Fig. 1 (right): speedup vs problem size and clusters | [`Harness::fig1_right`] |
//! | `headline` | Abstract: 47.9% speedup improvement | [`Harness::headline`] |
//! | `model_fit` | Eq. 1 coefficients | [`Harness::model_fit`] |
//! | `mape_table` | Eq. 2: MAPE(N) < 1% | [`Harness::mape_table`] |
//! | `decision` | Eq. 3: minimum clusters under a deadline | [`Harness::decision_table`] |
//! | `ablation` | §II design choices in isolation | [`Harness::ablation`] |
//! | `kernel_sweep` | model generality across the kernel zoo | [`Harness::kernel_sweep`] |
//! | `breakeven` | §I offload-or-not decision | [`Harness::breakeven`] |
//! | `energy` | energy per strategy and cluster count | [`Harness::energy_sweep`] |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod harness;
mod report;
mod results;
mod sidecar;

pub use harness::Harness;
pub use report::{json_arg, render_table, write_csv, write_json};
pub use results::{
    AblationRow, BreakEvenRow, DecisionRow, EnergyRow, Fig1LeftRow, Fig1RightRow, Headline,
    KernelSweepRow, MapeRow, ModelFitResult,
};
pub use sidecar::{write_bench_sidecar, BenchMetadata, BenchSidecar};

/// The cluster counts the paper sweeps: powers of two up to 32.
pub const PAPER_M: [usize; 6] = [1, 2, 4, 8, 16, 32];

/// The problem sizes of the paper's model validation (Eq. 2).
pub const MAPE_N: [u64; 4] = [256, 512, 768, 1024];

/// The problem sizes of the Fig. 1 (right) speedup sweep.
pub const FIG1_RIGHT_N: [u64; 4] = [1024, 2048, 4096, 8192];

/// Disjoint problem sizes used to *fit* the model before validating on
/// [`MAPE_N`] (train/validate separation the paper did not need, since
/// its coefficients came from hardware inspection).
pub const FIT_N: [u64; 6] = [384, 640, 896, 1280, 1792, 2560];
