//! Offload tuning under a deadline — the paper's §III use case.
//!
//! A latency-sensitive pipeline stage must finish a DAXPY within a given
//! budget. Instead of guessing, we (1) fit the runtime model to a handful
//! of calibration offloads, (2) invert it (the paper's Eq. 3) to get the
//! minimum number of clusters per deadline, and (3) confirm each decision
//! by actually running the offload.
//!
//! ```text
//! cargo run --release --example offload_tuning
//! ```

use mpsoc::kernels::Daxpy;
use mpsoc::offload::decision::{decide, Decision};
use mpsoc::offload::{OffloadStrategy, Offloader, RuntimeModel, Sample};
use mpsoc::sim::rng::SplitMix64;
use mpsoc::soc::SocConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut offloader = Offloader::new(SocConfig::manticore())?;
    let kernel = Daxpy::new(-1.5);
    let mut rng = SplitMix64::new(99);

    let mut measure =
        |off: &mut Offloader, n: u64, m: usize| -> Result<u64, Box<dyn std::error::Error>> {
            let mut x = vec![0.0; n as usize];
            let mut y = vec![0.0; n as usize];
            let mut local = SplitMix64::new(rng.next_u64());
            local.fill_f64(&mut x, -1.0, 1.0);
            local.fill_f64(&mut y, -1.0, 1.0);
            let run = off.offload(&kernel, &x, &y, m, OffloadStrategy::extended())?;
            assert!(run.verify(&kernel, &x, &y).passed());
            Ok(run.cycles())
        };

    // 1. Calibrate: a coarse grid is enough for a 3-coefficient model.
    println!("calibrating the runtime model on 12 offloads...");
    let mut samples = Vec::new();
    for &n in &[512u64, 1536, 3072] {
        for &m in &[1usize, 4, 16, 32] {
            let cycles = measure(&mut offloader, n, m)?;
            samples.push(Sample {
                m: m as u64,
                n,
                cycles: cycles as f64,
            });
        }
    }
    let fit = RuntimeModel::fit(&samples)?;
    println!("fitted model: {} (r² = {:.6})\n", fit.model, fit.r_squared);

    // 2 + 3. Decide per deadline and confirm by running.
    let n = 2048u64;
    println!("stage workload: DAXPY N={n}; machine: 32 clusters\n");
    println!(
        "{:>10}  {:>26}  {:>12}  {:>9}",
        "deadline", "decision", "measured", "met?"
    );
    for t_max in [700.0, 950.0, 1100.0, 1400.0, 2500.0] {
        let decision = decide(&fit.model, n, t_max, 32);
        match decision {
            Decision::Offload { m } => {
                let cycles = measure(&mut offloader, n, m as usize)?;
                println!(
                    "{:>10.0}  {:>26}  {:>6} cyc  {:>9}",
                    t_max,
                    decision.to_string(),
                    cycles,
                    if (cycles as f64) <= t_max * 1.01 {
                        "yes"
                    } else {
                        "NO"
                    }
                );
            }
            _ => {
                let cycles = measure(&mut offloader, n, 32)?;
                println!(
                    "{:>10.0}  {:>26}  {:>6} cyc  {:>9}",
                    t_max,
                    decision.to_string(),
                    cycles,
                    "n/a"
                );
            }
        }
    }
    Ok(())
}
