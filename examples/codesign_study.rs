//! Hardware/software co-design study — what each extension buys.
//!
//! Sweeps the four dispatch × synchronization combinations over the
//! cluster count on a 1024-element DAXPY, printing the per-phase
//! breakdown of the two extreme configurations so the overhead structure
//! is visible: sequential dispatch staggers cluster wake-ups linearly in
//! `M`, the software barrier adds AMO contention and polling quantization,
//! and the combination of multicast + credit counter removes both.
//!
//! ```text
//! cargo run --release --example codesign_study
//! ```

use mpsoc::kernels::Daxpy;
use mpsoc::offload::{OffloadStrategy, Offloader};
use mpsoc::soc::SocConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut offloader = Offloader::new(SocConfig::manticore())?;
    let kernel = Daxpy::new(3.0);
    let n = 1024usize;
    let x: Vec<f64> = (0..n).map(|i| 0.25 * i as f64).collect();
    let y: Vec<f64> = vec![1.0; n];

    // The 2×2 co-design grid over the cluster sweep.
    println!("DAXPY N={n} runtime [cycles] per configuration:\n");
    print!("{:<36}", "configuration \\ M");
    let ms = [1usize, 2, 4, 8, 16, 32];
    for m in ms {
        print!("{m:>7}");
    }
    println!();
    for strategy in OffloadStrategy::all() {
        print!("{:<36}", strategy.to_string());
        for m in ms {
            let run = offloader.offload(&kernel, &x, &y, m, strategy)?;
            assert!(run.verify(&kernel, &x, &y).passed());
            print!("{:>7}", run.cycles());
        }
        println!();
    }

    // Phase anatomy of baseline vs full co-design at M=32.
    println!("\nphase anatomy at M=32 (absolute cycles):\n");
    for strategy in [OffloadStrategy::baseline(), OffloadStrategy::extended()] {
        let run = offloader.offload(&kernel, &x, &y, 32, strategy)?;
        let p = run.outcome.phases;
        println!("{strategy}:");
        println!(
            "  last doorbell delivered : {:>5}",
            p.last_dispatch.as_u64()
        );
        println!("  last DMA-in done        : {:>5}", p.last_dma_in.as_u64());
        println!("  last compute done       : {:>5}", p.last_compute.as_u64());
        println!("  last DMA-out done       : {:>5}", p.last_dma_out.as_u64());
        println!("  host notified           : {:>5}", p.sync_done.as_u64());
        println!("  total                   : {:>5}", run.cycles());
        println!(
            "  host polling iterations : {:>5}",
            run.outcome.poll_iterations
        );
        println!(
            "  energy estimate         : {:>8.1} nJ",
            run.outcome.energy.total_pj() / 1000.0
        );
        println!();
    }
    Ok(())
}
