//! Bringing your own kernel: implement [`Kernel`] for a workload the zoo
//! does not ship — `y[i] = a·x[i] + b` (scale-and-offset, common in
//! sensor normalization) — and offload it unchanged through the runtime.
//!
//! ```text
//! cargo run --release --example custom_kernel
//! ```

use mpsoc::isa::{BuildError, FpReg, IntReg, Program, ProgramBuilder};
use mpsoc::kernels::{CoreSlice, GoldenOutput, Kernel, KernelKind};
use mpsoc::offload::{OffloadStrategy, Offloader};
use mpsoc::soc::SocConfig;

/// `y = a·x + b` with scalars `a`, `b`.
#[derive(Debug, Clone, Copy)]
struct ScaleOffset {
    a: f64,
    b: f64,
}

impl Kernel for ScaleOffset {
    fn name(&self) -> &str {
        "scale-offset"
    }

    fn kind(&self) -> KernelKind {
        KernelKind::Map
    }

    fn uses_y(&self) -> bool {
        false // y is pure output; only x streams in
    }

    fn scalar_args(&self) -> Vec<f64> {
        vec![self.a, self.b]
    }

    fn codegen(&self, slice: &CoreSlice) -> Result<Program, BuildError> {
        let mut p = ProgramBuilder::new();
        let (xp, yp, cnt, args) = (
            IntReg::new(1),
            IntReg::new(2),
            IntReg::new(3),
            IntReg::new(4),
        );
        let (xv, yv, a, b) = (FpReg::new(0), FpReg::new(1), FpReg::new(31), FpReg::new(30));
        p.li(xp, slice.x_base as i64);
        p.li(yp, slice.y_base as i64);
        p.li(args, slice.args_base as i64);
        p.fld(a, args, 0);
        p.fld(b, args, 8);
        if slice.elems > 0 {
            p.li(cnt, slice.elems as i64);
            let top = p.label();
            p.bind(top);
            p.fld(xv, xp, 0);
            p.fmadd(yv, a, xv, b); // y = a*x + b in one FMA
            p.fsd(yv, yp, 0);
            p.addi(xp, xp, 8);
            p.addi(yp, yp, 8);
            p.addi(cnt, cnt, -1);
            p.bnez(cnt, top);
        }
        p.halt();
        p.build()
    }

    fn golden(&self, x: &[f64], _y: &[f64]) -> GoldenOutput {
        GoldenOutput::Vector(x.iter().map(|&xi| self.a.mul_add(xi, self.b)).collect())
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut offloader = Offloader::new(SocConfig::with_clusters(16))?;
    let kernel = ScaleOffset { a: 0.061, b: -40.0 }; // raw ADC -> degrees C

    let n = 4096usize;
    let raw: Vec<f64> = (0..n).map(|i| 600.0 + ((i * 37) % 400) as f64).collect();
    let out = vec![0.0; n];

    println!("normalizing {n} sensor samples on the accelerator...");
    let run = offloader.offload(&kernel, &raw, &out, 16, OffloadStrategy::extended())?;
    let verify = run.verify(&kernel, &raw, &out);
    println!("runtime : {} cycles", run.cycles());
    println!("verify  : {verify}");
    println!(
        "cores   : {} worker cores retired {} micro-ops",
        16 * offloader.config().cores_per_cluster,
        run.outcome.total_core_ops()
    );

    // Show a couple of converted values.
    if let mpsoc::offload::OffloadResult::Vector(v) = &run.result {
        println!("sample 0: raw {:.0} -> {:.2} degC", raw[0], v[0]);
        println!("sample 9: raw {:.0} -> {:.2} degC", raw[9], v[9]);
    }
    Ok(())
}
