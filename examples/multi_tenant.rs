//! Multi-tenant scheduling: a mixed 20-job stream arrives at a
//! 32-cluster Manticore-class SoC. Every job passes through model-guided
//! admission (Eq. 3), gets a disjoint cluster partition from the
//! model-guided packer, and runs twice: against *solo* service times
//! measured on an otherwise-idle machine, and *co-simulated* on one
//! shared SoC where concurrent tenants queue for the serial host core
//! and interfere on the NoC/HBM — the closing table shows, per tenant,
//! how much slower the shared machine really is than the solo premise
//! promised, and how many cycles the SoC attributes to contention.
//!
//! ```text
//! cargo run --release --example multi_tenant
//! ```

use mpsoc::offload::Offloader;
use mpsoc::sched::{
    calibrate, AdmissionController, AdmissionDecision, ArrivalPattern, CalibrationGrid, Engine,
    JobOutcome, ModelGuided, ServiceBackend, Workload,
};
use mpsoc::soc::SocConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Fit per-kernel t̂(M, N) and host cost models on the actual machine.
    println!("calibrating kernel models on the 32-cluster SoC...\n");
    let mut offloader = Offloader::new(SocConfig::manticore())?;
    let table = calibrate(&mut offloader, &CalibrationGrid::default(), 0xBEEF)?;

    // A bursty mixed stream over the whole vector kernel zoo: 20 jobs,
    // arriving in clumps of four, each with its own size and deadline.
    // Sub-break-even sizes exercise the host fallback; slack draws below
    // 1× the reference prediction make some deadlines unservable.
    let mut workload = Workload::balanced(
        20,
        0xBEEF,
        ArrivalPattern::Bursty {
            burst: 4,
            mean_gap: 6000.0,
        },
    );
    workload.sizes = vec![64, 256, 512, 1024, 2048, 4096];
    workload.slack = (0.7, 5.0);
    let jobs = workload.generate(&table);

    // Per-job admission: offload with M_min clusters, fall back to the
    // host, or reject.
    let admission = AdmissionController::new(table.clone(), 32);
    println!("job  kernel   N     arrival  deadline  admission");
    println!("---  ------  ----  --------  --------  -----------------------------");
    for job in &jobs {
        let verdict = match admission.admit(job) {
            AdmissionDecision::Offload { m_min, predicted } => {
                format!("offload, M_min={m_min} (t̂={predicted:.0} cy)")
            }
            AdmissionDecision::Host { predicted } => {
                format!("run on host (t̂={predicted:.0} cy)")
            }
            AdmissionDecision::Reject { reason } => format!("reject: {reason:?}"),
        };
        println!(
            "{:>3}  {:<6}  {:>4}  {:>8}  {:>8}  {verdict}",
            job.id,
            job.kernel.name(),
            job.n,
            job.arrival,
            job.deadline,
        );
    }

    // Replay the stream through the engine with the model-guided packer,
    // charging service times measured on a fresh simulated SoC.
    let soc = Offloader::new(SocConfig::manticore())?;
    let mut engine = Engine::new(table, 32, ServiceBackend::measured(soc, 0xBEEF));
    let report = engine.run(&jobs, &mut ModelGuided)?;

    println!("\njob  outcome");
    println!("---  ---------------------------------------------");
    for record in &report.records {
        let line = match record.outcome {
            JobOutcome::Offloaded { start, finish, m } => {
                format!("{m:>2} clusters  [{start:>6}, {finish:>6})")
            }
            JobOutcome::Host { start, finish } => format!("host        [{start:>6}, {finish:>6})"),
            JobOutcome::Rejected { reason } => format!("rejected: {reason:?}"),
        };
        let miss = if record.missed_deadline() {
            "  MISSED"
        } else {
            ""
        };
        println!("{:>3}  {line}{miss}", record.job.id);
    }

    let m = &report.metrics;
    println!(
        "\n{} jobs: {} offloaded, {} on host, {} rejected",
        m.jobs, m.offloaded, m.host_runs, m.rejected
    );
    println!(
        "miss rate {:.1}%, utilization {:.1}%, p95 latency {} cycles",
        m.miss_rate * 100.0,
        m.cluster_utilization * 100.0,
        m.p95_latency
    );

    // Same stream, same policy — but now every tenant is co-simulated
    // on ONE shared SoC instead of having a solo measurement replayed.
    // Service times stretch wherever tenants queue for the host core or
    // collide on the NoC/HBM, and the SoC attributes those cycles.
    let soc = Offloader::new(SocConfig::manticore())?;
    let mut cosim = Engine::new(
        admission.table().clone(),
        32,
        ServiceBackend::co_simulated(soc, 0xBEEF),
    );
    let shared = cosim.run(&jobs, &mut ModelGuided)?;

    println!("\nsolo premise vs shared machine (same stream, model-guided packer):");
    println!("job  solo svc  shared svc  slower   contention");
    println!("---  --------  ----------  -------  ----------");
    let mut slowdowns: Vec<f64> = Vec::new();
    for (solo_rec, shared_rec) in report.records.iter().zip(&shared.records) {
        assert_eq!(solo_rec.job.id, shared_rec.job.id);
        let service = |outcome: &JobOutcome| match *outcome {
            JobOutcome::Offloaded { start, finish, .. } => Some(finish - start),
            _ => None,
        };
        let (Some(solo), Some(in_company)) =
            (service(&solo_rec.outcome), service(&shared_rec.outcome))
        else {
            continue;
        };
        let slowdown = in_company as f64 / solo as f64;
        slowdowns.push(slowdown);
        println!(
            "{:>3}  {:>8}  {:>10}  {:>6.2}x  {:>10}",
            solo_rec.job.id, solo, in_company, slowdown, shared_rec.contention_cycles
        );
    }
    let mean = slowdowns.iter().sum::<f64>() / slowdowns.len() as f64;
    println!(
        "\nmean tenant slowdown {:.2}x — miss rate {:.1}% co-simulated vs {:.1}% under \
         the solo premise",
        mean,
        shared.metrics.miss_rate * 100.0,
        m.miss_rate * 100.0
    );
    Ok(())
}
