//! Quickstart: offload a DAXPY to the simulated Manticore-class MPSoC
//! with both runtimes, verify the result, and compare the measurement
//! with the paper's analytic model.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use mpsoc::kernels::Daxpy;
use mpsoc::offload::{OffloadStrategy, Offloader, RuntimeModel};
use mpsoc::soc::SocConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 32-cluster Manticore-class SoC: 256 worker cores + 32 cluster
    // controllers + 1 CVA6-class host.
    let mut offloader = Offloader::new(SocConfig::manticore())?;

    // The paper's workload: y = a*x + y on 1024 doubles.
    let n = 1024usize;
    let a = 2.0;
    let x: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
    let y: Vec<f64> = (0..n).map(|i| (i as f64).cos()).collect();
    let kernel = Daxpy::new(a);

    println!("offloading DAXPY (N={n}) to 32 clusters...\n");
    for strategy in [OffloadStrategy::baseline(), OffloadStrategy::extended()] {
        let run = offloader.offload(&kernel, &x, &y, 32, strategy)?;
        let verify = run.verify(&kernel, &x, &y);
        println!("{strategy:<34} {:>5} cycles  result {verify}", run.cycles());
    }

    // The analytic model (Eq. 1) predicts the extended runtime.
    let model = RuntimeModel::paper();
    println!(
        "\npaper's Eq. 1 prediction at (M=32, N={n}): {:.1} cycles",
        model.predict(32, n as u64)
    );
    println!("(cycles are nanoseconds at the paper's 1 GHz clock)");
    Ok(())
}
