//! Visualizing an offload: per-cluster ASCII timelines of the two
//! runtimes, which make the paper's overhead story visible at a glance —
//! the baseline's staircase of staggered wake-ups versus the extended
//! runtime's clusters marching in lockstep.
//!
//! ```text
//! cargo run --release --example timeline
//! ```

use mpsoc::kernels::Daxpy;
use mpsoc::offload::{OffloadStrategy, Offloader};
use mpsoc::soc::SocConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Eight clusters keep the chart readable.
    let mut offloader = Offloader::new(SocConfig::with_clusters(8))?;
    let kernel = Daxpy::new(2.0);
    let n = 2048usize;
    let x: Vec<f64> = (0..n).map(|i| i as f64 * 0.01).collect();
    let y: Vec<f64> = vec![5.0; n];

    for strategy in [OffloadStrategy::baseline(), OffloadStrategy::extended()] {
        let run = offloader.offload(&kernel, &x, &y, 8, strategy)?;
        assert!(run.verify(&kernel, &x, &y).passed());
        println!("=== {strategy} ({} cycles) ===", run.cycles());
        println!("{}", run.outcome.render_timeline(100));
    }
    println!("legend: . idle | w waking | I DMA-in | C compute | O DMA-out | s completion");
    Ok(())
}
