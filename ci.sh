#!/usr/bin/env bash
# Full local CI gate: build, tests, lints, formatting.
#
#   ./ci.sh
#
# Everything runs against the vendored shims under shims/ — no network
# access required.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> ci green"
