#!/usr/bin/env bash
# Full local CI gate: build, tests, lints, formatting.
#
#   ./ci.sh
#
# Everything runs against the vendored shims under shims/ — no network
# access required.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> lint_kernels --deny-warnings (static verification of the kernel zoo)"
cargo run --release -q -p mpsoc-bench --bin lint_kernels -- --deny-warnings

echo "==> forbid(unsafe_code) gate (every workspace crate must carry the attribute)"
for lib in crates/*/src/lib.rs; do
    grep -q '^#!\[forbid(unsafe_code)\]' "$lib" \
        || { echo "missing #![forbid(unsafe_code)] in $lib"; exit 1; }
done

echo "==> rustdoc -D warnings (mpsoc-lint API docs must stay clean)"
RUSTDOCFLAGS="-D warnings" cargo doc -q -p mpsoc-lint --no-deps

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> offload_profile smoke test (trace schema self-validated)"
trace_dir="$(mktemp -d)"
trap 'rm -rf "$trace_dir"' EXIT
cargo run --release -q -p mpsoc-bench --bin offload_profile -- \
    --n 256 --m 2 --clusters 4 \
    --trace "$trace_dir/smoke.trace.json" --json "$trace_dir/smoke.json"
# The binary already schema-validates the trace it wrote and checks the
# phase-sum invariant; make sure the artifacts actually landed on disk.
test -s "$trace_dir/smoke.trace.json"
test -s "$trace_dir/smoke.json"

echo "==> interference smoke test (determinism-checked co-simulation)"
# The binary asserts its own headline claims (emergent co-resident
# slowdown, contention-accounted); two seed-equal runs must serialize
# byte-identically or the shared-SoC session has lost determinism.
cargo run --release -q -p mpsoc-bench --bin interference -- \
    --smoke --json "$trace_dir/interference_a.json"
cargo run --release -q -p mpsoc-bench --bin interference -- \
    --smoke --json "$trace_dir/interference_b.json"
test -s "$trace_dir/interference_a.json"
cmp "$trace_dir/interference_a.json" "$trace_dir/interference_b.json"

echo "==> fault_sweep smoke test (self-healing offload under injected faults)"
# The binary asserts the robustness claims itself (100% single-transient
# recovery, verified-or-typed outcomes, smooth quarantine degradation);
# two runs must serialize byte-identically — fault injection is a pure
# function of (seed, site, occurrence), so determinism must survive it.
cargo run --release -q -p mpsoc-bench --bin fault_sweep -- \
    --smoke --json "$trace_dir/fault_a.json"
cargo run --release -q -p mpsoc-bench --bin fault_sweep -- \
    --smoke --json "$trace_dir/fault_b.json"
test -s "$trace_dir/fault_a.json"
cmp "$trace_dir/fault_a.json" "$trace_dir/fault_b.json"

echo "==> serve_study smoke test (fleet serving front-end, determinism-gated)"
# The binary asserts the serving claims itself (load-aware placement
# beating round-robin on p99 at overload, backpressure firing, stealing
# firing, cosim witness retries, in-process replay equality); two runs
# must serialize byte-identically — the whole serving path, wire frames
# included, is a pure function of the seed.
cargo run --release -q -p mpsoc-bench --bin serve_study -- \
    --smoke --json "$trace_dir/serve_a.json"
cargo run --release -q -p mpsoc-bench --bin serve_study -- \
    --smoke --json "$trace_dir/serve_b.json"
test -s "$trace_dir/serve_a.json"
cmp "$trace_dir/serve_a.json" "$trace_dir/serve_b.json"

echo "==> throughput_study smoke test (self-profiler + cycles/sec meter)"
# The binary asserts the observability claims itself (profile tree
# reconciling with wall time within 10%, live interpreter/engine hot
# sites, profiling-off byte-identity, nonzero per-backend rates, daemon
# GetStats == FleetSlo); two runs must serialize byte-identically — the
# cycle-domain report carries no wall-clock state.
cargo run --release -q -p mpsoc-bench --bin throughput_study -- \
    --smoke --json "$trace_dir/throughput_a.json" \
    --flamegraph "$trace_dir/throughput.folded" \
    --chrome "$trace_dir/throughput.trace.json"
cargo run --release -q -p mpsoc-bench --bin throughput_study -- \
    --smoke --json "$trace_dir/throughput_b.json"
test -s "$trace_dir/throughput_a.json"
test -s "$trace_dir/throughput.folded"
test -s "$trace_dir/throughput.trace.json"
cmp "$trace_dir/throughput_a.json" "$trace_dir/throughput_b.json"

echo "==> lint_kernels smoke test (determinism-gated like the other studies)"
cargo run --release -q -p mpsoc-bench --bin lint_kernels -- \
    --smoke --deny-warnings --json "$trace_dir/lint_a.json"
cargo run --release -q -p mpsoc-bench --bin lint_kernels -- \
    --smoke --deny-warnings --json "$trace_dir/lint_b.json"
test -s "$trace_dir/lint_a.json"
cmp "$trace_dir/lint_a.json" "$trace_dir/lint_b.json"

echo "==> cost_study smoke test (static bounds soundness, determinism-gated)"
# The binary asserts soundness itself: simulator-measured cycles and all
# five phase milestones inside the static [best, worst] in every zoo ×
# size × strategy cell, host path included, plus a co-simulated
# two-tenant witness under the contention-widened worst bound. Two runs
# must serialize byte-identically, and the replay sanitizer re-checks
# the recorded phase breakdowns against freshly computed bounds.
cargo run --release -q -p mpsoc-bench --bin cost_study -- \
    --smoke --json "$trace_dir/cost_a.json"
cargo run --release -q -p mpsoc-bench --bin cost_study -- \
    --smoke --json "$trace_dir/cost_b.json"
test -s "$trace_dir/cost_a.json"
cmp "$trace_dir/cost_a.json" "$trace_dir/cost_b.json"
cargo run --release -q -p mpsoc-bench --bin cost_study -- \
    --replay "$trace_dir/cost_a.json"

echo "==> chaos_study smoke test (fleet self-healing, determinism-gated)"
# The binary asserts the self-healing claims itself: auto-quarantine
# fires mid-stream with no explicit quarantine call, zero-fault plans
# reproduce the no-plan fleet byte-for-byte, and at the overloaded
# witness cell quarantine+failover+redirect attainment beats
# no-recovery by >= 15%. Two runs must serialize byte-identically —
# fault injection, strikes, and evacuation are all pure functions of
# the seed — and the replay sanitizer re-computes the recorded grid
# from its own scale stamp and demands the same bytes.
cargo run --release -q -p mpsoc-bench --bin chaos_study -- \
    --smoke --json "$trace_dir/chaos_a.json"
cargo run --release -q -p mpsoc-bench --bin chaos_study -- \
    --smoke --json "$trace_dir/chaos_b.json"
test -s "$trace_dir/chaos_a.json"
cmp "$trace_dir/chaos_a.json" "$trace_dir/chaos_b.json"
cargo run --release -q -p mpsoc-bench --bin chaos_study -- \
    --replay "$trace_dir/chaos_a.json"

echo "==> profiling-off byte-identity (MPSOC_PROFILE=0 must not change results)"
# The profiler's disabled path is a single branch per scope; proving it
# cannot leak into cycle-domain output: profiled and unprofiled smoke
# runs of the study binaries must serialize byte-identically.
MPSOC_PROFILE=0 cargo run --release -q -p mpsoc-bench --bin sched_study -- \
    --smoke --json "$trace_dir/sched_off.json"
cargo run --release -q -p mpsoc-bench --bin sched_study -- \
    --smoke --json "$trace_dir/sched_on.json"
cmp "$trace_dir/sched_off.json" "$trace_dir/sched_on.json"
MPSOC_PROFILE=0 cargo run --release -q -p mpsoc-bench --bin serve_study -- \
    --smoke --json "$trace_dir/serve_off.json"
cmp "$trace_dir/serve_off.json" "$trace_dir/serve_a.json"

echo "==> ci green"
