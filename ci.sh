#!/usr/bin/env bash
# Full local CI gate: build, tests, lints, formatting.
#
#   ./ci.sh
#
# Everything runs against the vendored shims under shims/ — no network
# access required.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> lint_kernels --deny-warnings (static verification of the kernel zoo)"
cargo run --release -q -p mpsoc-bench --bin lint_kernels -- --deny-warnings

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> offload_profile smoke test (trace schema self-validated)"
trace_dir="$(mktemp -d)"
trap 'rm -rf "$trace_dir"' EXIT
cargo run --release -q -p mpsoc-bench --bin offload_profile -- \
    --n 256 --m 2 --clusters 4 \
    --trace "$trace_dir/smoke.trace.json" --json "$trace_dir/smoke.json"
# The binary already schema-validates the trace it wrote and checks the
# phase-sum invariant; make sure the artifacts actually landed on disk.
test -s "$trace_dir/smoke.trace.json"
test -s "$trace_dir/smoke.json"

echo "==> interference smoke test (determinism-checked co-simulation)"
# The binary asserts its own headline claims (emergent co-resident
# slowdown, contention-accounted); two seed-equal runs must serialize
# byte-identically or the shared-SoC session has lost determinism.
cargo run --release -q -p mpsoc-bench --bin interference -- \
    --smoke --json "$trace_dir/interference_a.json"
cargo run --release -q -p mpsoc-bench --bin interference -- \
    --smoke --json "$trace_dir/interference_b.json"
test -s "$trace_dir/interference_a.json"
cmp "$trace_dir/interference_a.json" "$trace_dir/interference_b.json"

echo "==> fault_sweep smoke test (self-healing offload under injected faults)"
# The binary asserts the robustness claims itself (100% single-transient
# recovery, verified-or-typed outcomes, smooth quarantine degradation);
# two runs must serialize byte-identically — fault injection is a pure
# function of (seed, site, occurrence), so determinism must survive it.
cargo run --release -q -p mpsoc-bench --bin fault_sweep -- \
    --smoke --json "$trace_dir/fault_a.json"
cargo run --release -q -p mpsoc-bench --bin fault_sweep -- \
    --smoke --json "$trace_dir/fault_b.json"
test -s "$trace_dir/fault_a.json"
cmp "$trace_dir/fault_a.json" "$trace_dir/fault_b.json"

echo "==> serve_study smoke test (fleet serving front-end, determinism-gated)"
# The binary asserts the serving claims itself (load-aware placement
# beating round-robin on p99 at overload, backpressure firing, stealing
# firing, cosim witness retries, in-process replay equality); two runs
# must serialize byte-identically — the whole serving path, wire frames
# included, is a pure function of the seed.
cargo run --release -q -p mpsoc-bench --bin serve_study -- \
    --smoke --json "$trace_dir/serve_a.json"
cargo run --release -q -p mpsoc-bench --bin serve_study -- \
    --smoke --json "$trace_dir/serve_b.json"
test -s "$trace_dir/serve_a.json"
cmp "$trace_dir/serve_a.json" "$trace_dir/serve_b.json"

echo "==> throughput_study smoke test (self-profiler + cycles/sec meter)"
# The binary asserts the observability claims itself (profile tree
# reconciling with wall time within 10%, live interpreter/engine hot
# sites, profiling-off byte-identity, nonzero per-backend rates, daemon
# GetStats == FleetSlo); two runs must serialize byte-identically — the
# cycle-domain report carries no wall-clock state.
cargo run --release -q -p mpsoc-bench --bin throughput_study -- \
    --smoke --json "$trace_dir/throughput_a.json" \
    --flamegraph "$trace_dir/throughput.folded" \
    --chrome "$trace_dir/throughput.trace.json"
cargo run --release -q -p mpsoc-bench --bin throughput_study -- \
    --smoke --json "$trace_dir/throughput_b.json"
test -s "$trace_dir/throughput_a.json"
test -s "$trace_dir/throughput.folded"
test -s "$trace_dir/throughput.trace.json"
cmp "$trace_dir/throughput_a.json" "$trace_dir/throughput_b.json"

echo "==> profiling-off byte-identity (MPSOC_PROFILE=0 must not change results)"
# The profiler's disabled path is a single branch per scope; proving it
# cannot leak into cycle-domain output: profiled and unprofiled smoke
# runs of the study binaries must serialize byte-identically.
MPSOC_PROFILE=0 cargo run --release -q -p mpsoc-bench --bin sched_study -- \
    --smoke --json "$trace_dir/sched_off.json"
cargo run --release -q -p mpsoc-bench --bin sched_study -- \
    --smoke --json "$trace_dir/sched_on.json"
cmp "$trace_dir/sched_off.json" "$trace_dir/sched_on.json"
MPSOC_PROFILE=0 cargo run --release -q -p mpsoc-bench --bin serve_study -- \
    --smoke --json "$trace_dir/serve_off.json"
cmp "$trace_dir/serve_off.json" "$trace_dir/serve_a.json"

echo "==> ci green"
